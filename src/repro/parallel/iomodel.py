"""The BLAST worker's I/O + compute timeline.

The model translates "blastn searches a database fragment" into a
concrete sequence of application-level operations, fit to the trace
statistics of the paper's Section 4.2 / Figure 4 (8 workers, 8 nt
fragments):

* 18 operations per worker: 16 reads + 2 writes (144 ops total, 89 %
  reads);
* reads span 13 bytes (the index-file magic) to ~220 MB (the first
  sequential pass over a fragment's packed-sequence file, 0.65 x the
  340 MB fragment);
* writes are 50-778-byte temporary-result records (mean ≈ 690 B).

A fragment's on-disk footprint splits into the three formatdb files:
``.nsq`` (packed sequences, 65 %), ``.nhr`` (headers, 30 %), ``.nin``
(index, 5 %).  The compute phases between reads total
``residues / scan_rate`` CPU seconds (see
:class:`repro.core.calibration.BlastCostModel`).

The model is cross-validated against traces collected from the real
engine in ``tests/test_iomodel_validation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.calibration import BlastCostModel


#: File-size split of a formatted fragment.
NSQ_FRACTION = 0.65
NHR_FRACTION = 0.30
NIN_FRACTION = 0.05

#: Number of mid-scan re-read bursts (hit neighbourhood lookups).
N_RESCAN_READS = 6
#: Number of header-file reads (description fetches for reported hits).
N_HEADER_READS = 4
#: Trailing small sequence re-reads (alignment rendering).
N_TAIL_READS = 2
#: Temporary-result writes per fragment search.
N_RESULT_WRITES = 2


@dataclass(frozen=True)
class FragmentSpec:
    """One unit of work as the I/O layer sees it.

    Under database segmentation each spec is a distinct fragment with
    its own files.  Under query segmentation every worker searches the
    *whole* database, so all specs share ``file_id`` (one set of files)
    while keeping distinct ``fragment_id`` task identities.
    """

    fragment_id: int
    nbytes: int
    residues: int
    file_id: Optional[int] = None

    def file_name(self, ext: str) -> str:
        fid = self.fragment_id if self.file_id is None else self.file_id
        return f"nt.{fid:03d}.{ext}"


@dataclass(frozen=True)
class Step:
    """One element of the worker timeline.

    ``scan`` is a read of ``size`` bytes *interleaved* with ``seconds``
    of compute: the mmap'd first pass over the sequence file, whose
    demand-paged I/O is spread across the scan rather than blocking up
    front.  It is traced as a single application-level read (that is
    what the paper's instrumentation records for an mmap region — the
    220 MB maximum in Figure 4), but executes as alternating
    chunk-read/compute bursts, which is why concurrent workers' striped
    reads mostly do not collide.
    """

    kind: str                 # "read" | "write" | "compute" | "scan"
    path: str = ""
    offset: int = 0
    size: int = 0
    seconds: float = 0.0


#: Target I/O chunk of the scan's demand paging (jittered per chunk).
SCAN_CHUNK = 4 * (1 << 20)


def fragment_files(spec: FragmentSpec) -> Dict[str, int]:
    """File name -> size for one formatted fragment."""
    nsq = max(int(spec.nbytes * NSQ_FRACTION), 64)
    nhr = max(int(spec.nbytes * NHR_FRACTION), 64)
    nin = max(spec.nbytes - nsq - nhr, 64)
    return {
        spec.file_name("nsq"): nsq,
        spec.file_name("nhr"): nhr,
        spec.file_name("nin"): nin,
    }


def fragment_steps(spec: FragmentSpec, cost: "BlastCostModel",
                   rng: Optional[np.random.Generator] = None,
                   warm: bool = False) -> List[Step]:
    """The worker timeline for searching one fragment.

    Deterministic given *rng*; with ``rng=None`` a fragment-seeded
    generator is used so traces are reproducible per fragment.

    *warm* marks a fragment this worker has searched before in the same
    session: compute scales by the cost model's ``warm_compute_factor``
    (the engine's cached scan structures skip the packing cost).  The
    I/O steps are unchanged — payload caching is the OS page cache's
    job, modeled by the file-system layer, not the engine's.
    """
    rng = rng or np.random.default_rng(1000 + spec.fragment_id)
    files = fragment_files(spec)
    nsq_name = spec.file_name("nsq")
    nhr_name = spec.file_name("nhr")
    nin_name = spec.file_name("nin")
    nsq, nhr, nin = files[nsq_name], files[nhr_name], files[nin_name]

    # Fragment content drives search effort: seed/extension density
    # varies across fragments even when residue counts are balanced, so
    # per-fragment compute varies ~10 % — which is also what de-phases
    # the workers' I/O bursts on shared data servers.
    content_factor = float(rng.lognormal(0.0, 0.10))
    total_compute = cost.compute_seconds(spec.residues,
                                         warm=warm) * content_factor
    steps: List[Step] = []

    # 1. Open the index: the 13-byte magic/version probe the paper's
    #    trace shows as its smallest read, then the rest of the index.
    steps.append(Step("read", nin_name, 0, 13))
    first = min(1024, max(nin - 13, 1))
    steps.append(Step("read", nin_name, 13, first))
    rest = nin - 13 - first
    if rest > 0:
        steps.append(Step("read", nin_name, 13 + first, rest))
    steps.append(Step("compute", seconds=cost.setup_cpu))

    # 2+3. The scan: one sequential demand-paged pass over the packed
    #    sequence file (~0.65 x fragment — the trace's maximum read),
    #    interleaved with the bulk of the compute.
    compute_share = 0.75 * total_compute
    scan_compute = 0.6 * compute_share
    steps.append(Step("scan", nsq_name, 0, nsq, seconds=scan_compute))

    #    Re-read bursts of sequence regions between further compute
    #    (word hits pulling in neighbourhoods far from the scan point).
    burst = (compute_share - scan_compute) / N_RESCAN_READS
    for _ in range(N_RESCAN_READS):
        size = int(min(nsq, max(4096, rng.lognormal(np.log(0.02 * nsq + 1), 0.8))))
        offset = int(rng.integers(0, max(nsq - size, 1)))
        steps.append(Step("read", nsq_name, offset, size))
        steps.append(Step("compute", seconds=burst))

    # 4. Fetch hit descriptions from the header file.
    hdr_chunk = nhr // N_HEADER_READS
    remaining_compute = 0.25 * total_compute
    hdr_burst = remaining_compute / max(N_HEADER_READS + N_TAIL_READS, 1)
    pos = 0
    for i in range(N_HEADER_READS):
        size = hdr_chunk if i < N_HEADER_READS - 1 else nhr - pos
        if size <= 0:
            break
        steps.append(Step("read", nhr_name, pos, size))
        pos += size
        steps.append(Step("compute", seconds=hdr_burst))

    # 5. Small trailing sequence re-reads (alignment rendering).
    for _ in range(N_TAIL_READS):
        size = int(min(nsq, max(2048, rng.lognormal(np.log(0.005 * nsq + 1), 0.7))))
        offset = int(rng.integers(0, max(nsq - size, 1)))
        steps.append(Step("read", nsq_name, offset, size))
        steps.append(Step("compute", seconds=hdr_burst))

    # 6. Temporary result/synchronisation writes (50-778 B, mean ~690 B
    #    in the paper's trace).
    for i in range(N_RESULT_WRITES):
        size = int(rng.integers(600, 779)) if i == 0 else int(rng.integers(50, 779))
        steps.append(Step("write", spec.file_name("tmp"), 0, size))

    steps.append(Step("compute", seconds=cost.result_cpu))
    return steps


def steps_summary(steps: List[Step]) -> Dict[str, float]:
    """Totals used by tests and the Figure 4 bench.

    A ``scan`` counts as one application-level read (that is how the
    paper's instrumentation sees an mmap'd pass)."""
    reads = [s for s in steps if s.kind in ("read", "scan")]
    writes = [s for s in steps if s.kind == "write"]
    return {
        "n_reads": len(reads),
        "n_writes": len(writes),
        "read_bytes": sum(s.size for s in reads),
        "write_bytes": sum(s.size for s in writes),
        "max_read": max((s.size for s in reads), default=0),
        "min_read": min((s.size for s in reads), default=0),
        "compute_seconds": sum(s.seconds for s in steps
                               if s.kind in ("compute", "scan")),
    }
