"""Programmatic regeneration of the paper's tables and figures.

Each ``figure*``/``table1`` function runs the corresponding experiment
set and returns a :class:`FigureResult` with the raw data, the rendered
table, and (where the paper plots one) an ASCII chart.  The benchmark
files in ``benchmarks/`` are thin assertion wrappers around these, and
``python -m repro.cli reproduce --figure 9`` exposes them on the
command line.

All functions take ``scale``: 1.0 is the paper's 2.7 GB nt (seconds of
wall time per run); 0.1 is a quick look.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.calibration import default_cost_model
from repro.core.experiment import (
    ExperimentConfig,
    Placement,
    Variant,
    run_experiment,
)
from repro.core.plot import figure4_scatter, figure_lines
from repro.core.report import format_series, format_table

MB = 1_000_000


@dataclass
class FigureResult:
    """One regenerated artefact."""

    figure_id: str
    title: str
    table: str
    chart: str = ""
    #: Raw numbers, keyed per figure (see each function's docstring).
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        parts = [self.table]
        if self.chart:
            parts += ["", self.chart]
        return "\n".join(parts)


def table1(scale: float = 1.0) -> FigureResult:
    """§4.1 platform microbenchmarks.  data: {metric: (measured, paper)}."""
    from repro.cluster import Cluster
    from repro.cluster.params import MiB

    total = int(200 * MB * min(scale * 4, 1.0)) or MB

    def disk_rate(kind):
        c = Cluster(n_nodes=1)

        def proc():
            off = 0
            while off < total:
                if kind == "read":
                    yield c[0].disk.read(off, MiB, stream="bonnie")
                else:
                    yield c[0].disk.write(off, MiB, stream="bonnie")
                off += MiB

        p = c.sim.process(proc())
        c.sim.run_until_complete(p)
        return total / c.sim.now / MB

    def tcp_rate():
        c = Cluster(n_nodes=2)

        def proc():
            yield from c.network.transfer(c[0], c[1], total)

        p = c.sim.process(proc())
        c.sim.run_until_complete(p)
        return total / c.sim.now / MB

    data = {
        "disk write (Bonnie)": (disk_rate("write"), 32.0),
        "disk read (Bonnie)": (disk_rate("read"), 26.0),
        "TCP/Myrinet (Netperf)": (tcp_rate(), 112.0),
    }
    rows = [[name, paper, round(measured, 1), round(measured / paper, 3)]
            for name, (measured, paper) in data.items()]
    return FigureResult(
        "T1", "platform microbenchmarks (MB/s)",
        format_table("T1: platform microbenchmarks (MB/s), paper Section 4.1",
                     ["metric", "paper", "measured", "ratio"], rows,
                     col_width=22),
        data=data)


def figure4(scale: float = 1.0) -> FigureResult:
    """The 8-worker I/O trace.  data: {"stats": TraceStats, "tracer": ...}."""
    from repro.trace import analyze

    cfg = ExperimentConfig(variant=Variant.ORIGINAL, n_workers=8,
                           n_fragments=8, trace=True).scaled(scale)
    res = run_experiment(cfg)
    stats = analyze(res.tracer)
    rows = [
        ["total operations", 144, stats.operations],
        ["read fraction (%)", 89, round(100 * stats.read_fraction)],
        ["min read (B)", 13, stats.reads.min_bytes],
        ["max read (MB)", 220, round(stats.reads.max_bytes / MB)],
        ["write count", 16, stats.writes.count],
        ["mean write (B)", 690, round(stats.writes.mean_bytes)],
    ]
    return FigureResult(
        "F4", "I/O trace statistics, 8 workers",
        format_table("F4: I/O trace statistics, 8 workers (paper §4.2)",
                     ["statistic", "paper", "measured"], rows, col_width=18),
        chart=figure4_scatter(
            res.tracer.records,
            "F4: operation size vs time (log-y)"),
        data={"stats": stats, "tracer": res.tracer})


def figure5(scale: float = 1.0,
            workers: Tuple[int, ...] = (1, 2, 4, 8)) -> FigureResult:
    """Equal-resource comparison.  data: {"original": [...], "over PVFS": [...]}."""
    series: Dict[str, List[float]] = {"original": [], "over PVFS": []}
    for w in workers:
        for variant, key in ((Variant.ORIGINAL, "original"),
                             (Variant.PVFS, "over PVFS")):
            cfg = ExperimentConfig(variant=variant, n_workers=w,
                                   n_servers=w).scaled(scale)
            series[key].append(run_experiment(cfg).execution_time)
    table = format_series(
        "F5: execution time (s), equal resources",
        "workers", list(workers),
        {k: [round(v, 1) for v in vs] for k, vs in series.items()})
    chart = figure_lines(list(workers), series,
                         "F5 (chart): execution time vs worker nodes",
                         "workers")
    return FigureResult("F5", "equal-resource comparison", table, chart,
                        data=dict(series, workers=list(workers)))


def figure6(scale: float = 1.0,
            workers: Tuple[int, ...] = (1, 2, 4, 8),
            servers: Tuple[int, ...] = (1, 2, 4, 6, 8, 12, 16)
            ) -> FigureResult:
    """Server sweep.  data: {"sweep": {w: [t per server]}, "baselines": {w: t}}."""
    sweep: Dict[int, List[float]] = {}
    baselines: Dict[int, float] = {}
    for w in workers:
        baselines[w] = run_experiment(ExperimentConfig(
            variant=Variant.ORIGINAL, n_workers=w).scaled(scale)
        ).execution_time
        sweep[w] = [run_experiment(ExperimentConfig(
            variant=Variant.PVFS, n_workers=w, n_servers=s).scaled(scale)
        ).execution_time for s in servers]
    series = {f"{w} workers": [round(t, 1) for t in sweep[w]]
              for w in workers}
    table = format_series("F6: execution time (s) vs PVFS data servers",
                          "servers", list(servers), series)
    baseline_rows = [[w, round(baselines[w], 1)] for w in workers]
    table += "\n\n" + format_table("original baselines",
                                   ["workers", "exec (s)"], baseline_rows)
    chart = figure_lines(list(servers),
                         {f"{w} workers": sweep[w] for w in workers},
                         "F6 (chart): execution time vs data servers",
                         "data servers")
    return FigureResult("F6", "server-count sweep", table, chart,
                        data={"sweep": sweep, "baselines": baselines,
                              "servers": list(servers)})


def figure7(scale: float = 1.0,
            workers: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
            ) -> FigureResult:
    """PVFS-8 vs CEFT-4+4.  data: the two series."""
    series: Dict[str, List[float]] = {"PVFS 8 servers": [],
                                      "CEFT 4+4 mirrored": []}
    for w in workers:
        for variant, key in ((Variant.PVFS, "PVFS 8 servers"),
                             (Variant.CEFT_PVFS, "CEFT 4+4 mirrored")):
            cfg = ExperimentConfig(variant=variant, n_workers=w, n_servers=8,
                                   placement=Placement.DEDICATED).scaled(scale)
            series[key].append(run_experiment(cfg).execution_time)
    table = format_series("F7: execution time (s), 8 data servers, dedicated",
                          "workers", list(workers),
                          {k: [round(v, 1) for v in vs]
                           for k, vs in series.items()})
    chart = figure_lines(list(workers), series,
                         "F7 (chart): PVFS-8 vs CEFT-4+4", "workers")
    return FigureResult("F7", "PVFS vs CEFT-PVFS", table, chart,
                        data=dict(series, workers=list(workers)))


def figure9(scale: float = 1.0) -> FigureResult:
    """Hot-spot degradation.  data: {variant: (base, stressed, factor)}."""
    paper = {Variant.ORIGINAL: 10.0, Variant.PVFS: 21.0,
             Variant.CEFT_PVFS: 2.0}
    data = {}
    rows = []
    for variant in (Variant.ORIGINAL, Variant.PVFS, Variant.CEFT_PVFS):
        base = run_experiment(ExperimentConfig(
            variant=variant, n_workers=8, n_servers=8).scaled(scale)
        ).execution_time
        stressed = run_experiment(ExperimentConfig(
            variant=variant, n_workers=8, n_servers=8, n_stressed_disks=1,
            time_limit=1e7).scaled(scale)).execution_time
        factor = stressed / base
        data[variant] = (base, stressed, factor)
        rows.append([variant.value, round(base, 1), round(stressed, 1),
                     round(factor, 2), paper[variant]])
    table = format_table(
        "F9: one stressed disk, 8 workers x 8 servers",
        ["scheme", "no stress (s)", "stressed (s)", "factor",
         "paper factor"], rows, col_width=14)
    return FigureResult("F9", "hot-spot degradation", table, data=data)


FIGURES = {
    "T1": table1,
    "F4": figure4,
    "F5": figure5,
    "F6": figure6,
    "F7": figure7,
    "F9": figure9,
}


def reproduce(figure_id: str, scale: float = 1.0) -> FigureResult:
    """Regenerate one artefact by id ("T1", "F4"..."F9")."""
    key = figure_id.upper()
    if not key.startswith(("T", "F")):
        key = f"F{key}"
    try:
        fn = FIGURES[key]
    except KeyError:
        raise ValueError(f"unknown figure {figure_id!r}; "
                         f"choose from {sorted(FIGURES)}") from None
    return fn(scale=scale)
