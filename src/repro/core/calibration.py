"""Calibration constants tying the simulation to the paper's testbed.

Hardware constants live in :mod:`repro.cluster.params` (Bonnie/Netperf
figures from Section 4.1).  This module calibrates the *application*
cost model: how fast one PrairieFire node's blastn scans database bytes,
and the fixed costs of the master/worker machinery.

The scan rate is chosen so that the simulated execution times land in
the paper's Figure 5/6 range: a one-worker search of the 2.7 GB nt
takes ~20 minutes (Figure 6 shows ~1200 s-scale times), and I/O is
~10 % of execution time at 2 workers (Section 4.3 quotes 11 %).  The
dual Athlon MP runs the single-threaded search on one CPU while the
second CPU absorbs daemons — matching the paper's ~99 % utilisation
observation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

MB = 1_000_000


@dataclass(frozen=True)
class BlastCostModel:
    """CPU-side costs of parallel BLAST."""

    #: Database bytes searched per CPU-second by blastn with the paper's
    #: 568-character query (one Athlon MP 1800+).
    scan_rate: float = 2.2 * MB
    #: Per-fragment setup CPU (loading index, query prep).
    setup_cpu: float = 2.0
    #: CPU to serialise/emit one worker's result set.
    result_cpu: float = 0.2
    #: Master CPU to merge one worker result into the global list.
    merge_cpu: float = 0.3
    #: Size of the query broadcast to every worker at job start (the
    #: paper's 568-character query plus headers).
    query_msg_bytes: int = 640
    #: Size of a task-assignment message.
    task_msg_bytes: int = 256
    #: Size of a worker-ready / control message.
    control_msg_bytes: int = 64
    #: Size of one worker's result payload sent to the master.
    result_msg_bytes: int = 20_000
    #: Fraction of the scan cost that is independent of query length
    #: (rolling the database through the word lookup).  Governs how
    #: little query segmentation helps: a worker searching 1/w of the
    #: query still pays this share of the full scan.
    query_indep_fraction: float = 0.5
    #: Compute multiplier for a fragment the worker has searched before
    #: in the same service session: the engine's ScanCache keeps the
    #: packed concatenation and word codes, so repeat searches skip the
    #: packing cost.  1.0 (the default) models a cold engine every time
    #: and leaves all single-job experiments untouched; the engine
    #: microbenchmarks (tools/bench_engine.py) measure the real ratio.
    warm_compute_factor: float = 1.0

    def compute_seconds(self, residues: int, warm: bool = False) -> float:
        """CPU seconds to search *residues* database bases; *warm*
        applies :attr:`warm_compute_factor` (scan structures cached)."""
        seconds = residues / self.scan_rate
        if warm:
            seconds *= self.warm_compute_factor
        return seconds

    def with_scan_rate(self, rate: float) -> "BlastCostModel":
        return replace(self, scan_rate=rate)

    def with_warm_factor(self, factor: float) -> "BlastCostModel":
        return replace(self, warm_compute_factor=factor)


def default_cost_model() -> BlastCostModel:
    """The PrairieFire-calibrated cost model."""
    return BlastCostModel()
