"""Derived metrics: speedups, I/O fractions, Amdahl bounds.

Section 4.3 of the paper explains the Figure 6 plateau with Amdahl's
Law: once I/O is a small fraction of execution time, speeding it up
further cannot move the total.  These helpers quantify that argument
for the experiment results.
"""

from __future__ import annotations

from typing import Sequence


def speedup(baseline: float, measured: float) -> float:
    """baseline / measured (>1 means faster than baseline)."""
    if measured <= 0:
        raise ValueError("measured time must be positive")
    return baseline / measured


def degradation(unstressed: float, stressed: float) -> float:
    """stressed / unstressed (the paper's 'degraded by a factor of N')."""
    if unstressed <= 0:
        raise ValueError("unstressed time must be positive")
    return stressed / unstressed


def io_fraction(io_time: float, compute_time: float) -> float:
    """Fraction of busy time spent in I/O."""
    total = io_time + compute_time
    return io_time / total if total > 0 else 0.0


def amdahl_speedup_limit(parallel_fraction: float) -> float:
    """Maximum overall speedup if only *parallel_fraction* of the work
    (here: the I/O share) can be accelerated indefinitely."""
    if not 0 <= parallel_fraction <= 1:
        raise ValueError("fraction must be in [0, 1]")
    serial = 1.0 - parallel_fraction
    return float("inf") if serial == 0 else 1.0 / serial


def amdahl_time(total: float, improvable_fraction: float,
                improvement: float) -> float:
    """Execution time after speeding the improvable part up by
    *improvement* x."""
    if improvement <= 0:
        raise ValueError("improvement must be positive")
    return total * ((1 - improvable_fraction) + improvable_fraction / improvement)


def efficiency(times: Sequence[float]) -> Sequence[float]:
    """Parallel efficiency of a scaling series: E_n = T_1 / (n * T_n),
    assuming times[i] corresponds to 2**i workers is NOT assumed — the
    caller supplies matching worker counts via zip."""
    if not times:
        return []
    t1 = times[0]
    return [t1 / ((i + 1) * t) if t > 0 else 0.0 for i, t in enumerate(times)]
