"""Experiment configuration and runner.

Reproduces the paper's measurement setups:

* **Placement** (paper Figure 2): the master and the metadata server
  share one node; workers and data servers share nodes ("overlap to the
  maximum degree") in the COLOCATED placement, or run on disjoint nodes
  in DEDICATED.
* **Variants** (Section 3): ORIGINAL (local-disk conventional I/O),
  PVFS, CEFT_PVFS (64 KB stripes in both parallel file systems).
* **Hot spots** (Section 4.5 / Figure 8): ``n_stressed_disks`` nodes run
  the synchronous-append disk stressor for the whole experiment.

The search phase starts with cold caches and pre-placed fragments; the
original variant's copy step is accounted out-of-band because the paper
subtracts measured copy time from its totals — either analytically
(:func:`repro.parallel.mpiblast.estimate_copy_time`) or, with
``simulate_copy=True``, by simulating the contended NFS staging phase
(:func:`measure_copy_phase`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.cluster import Cluster, disk_stressor
from repro.cluster.params import NodeParams, prairiefire_params
from repro.core.calibration import BlastCostModel, default_cost_model
from repro.fs.ceft import CEFT, WriteProtocol
from repro.fs.localfs import LocalFS
from repro.fs.pvfs import PVFS
from repro.parallel.ioadapters import LocalIO, ParallelIO, WorkerIO
from repro.parallel.iomodel import FragmentSpec
from repro.parallel.master import JobResult
from repro.parallel.mpiblast import estimate_copy_time, run_parallel_blast
from repro.trace import TraceCollector
from repro.workloads.synthdb import NT_DATABASE_SPEC, DatabaseSpec

KiB = 1 << 10


class Variant(enum.Enum):
    """The three I/O schemes of the paper."""

    ORIGINAL = "original"
    PVFS = "pvfs"
    CEFT_PVFS = "ceft-pvfs"


class Placement(enum.Enum):
    """Node-role placement."""

    #: Workers and data servers share nodes (paper Figures 2, 5, 9).
    COLOCATED = "colocated"
    #: Workers and data servers on disjoint nodes (paper Figure 7).
    DEDICATED = "dedicated"


class Parallelization(enum.Enum):
    """The two parallel-BLAST approaches of the paper's Section 2.2."""

    #: mpiBLAST style: the database is split, the query replicated.
    DATABASE_SEGMENTATION = "database-segmentation"
    #: WU-BLAST style: the query is split, the database replicated —
    #: every worker reads the *whole* database and still pays the
    #: query-independent share of the scan cost.
    QUERY_SEGMENTATION = "query-segmentation"


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to run one measurement point."""

    variant: Variant = Variant.ORIGINAL
    n_workers: int = 8
    #: Data servers (PVFS); for CEFT this is the total across both
    #: groups and must be even (4 mirroring 4 == 8).
    n_servers: int = 8
    placement: Placement = Placement.COLOCATED
    db: DatabaseSpec = NT_DATABASE_SPEC
    #: Fragments to segment the database into (defaults to n_workers).
    n_fragments: Optional[int] = None
    stripe_size: int = 64 * KiB
    #: How many disks to stress with the Figure 8 program.  For the
    #: parallel file systems the first data-server nodes are stressed;
    #: for ORIGINAL the first worker nodes (their local disks).
    n_stressed_disks: int = 0
    cost: BlastCostModel = field(default_factory=default_cost_model)
    node_params: NodeParams = field(default_factory=prairiefire_params)
    seed: int = 0
    #: CEFT-specific knobs.
    ceft_protocol: WriteProtocol = WriteProtocol.CLIENT_ASYNC
    ceft_double_parallelism: bool = True
    ceft_skip_hot: bool = True
    ceft_load_period: float = 5.0
    #: Collect application-level I/O traces.
    trace: bool = False
    #: Database vs query segmentation (paper Section 2.2).
    parallelization: Parallelization = Parallelization.DATABASE_SEGMENTATION
    #: For ORIGINAL: simulate the NFS->local-disk staging phase (in its
    #: own simulation, as the copies happened before the timed runs)
    #: instead of the analytic single-stream estimate.
    simulate_copy: bool = False
    #: Consecutive queries against the same database (page caches stay
    #: warm between them — see bench_ext_warmcache.py).  The paper
    #: measures single queries.
    n_queries: int = 1
    time_limit: float = 1e9

    def scaled(self, factor: float) -> "ExperimentConfig":
        """Same experiment on a proportionally smaller database (used by
        tests; compute/I-O ratios are preserved)."""
        return replace(self, db=self.db.scaled(factor))

    @property
    def fragments(self) -> List[FragmentSpec]:
        if self.parallelization is Parallelization.QUERY_SEGMENTATION:
            # One task per worker, all over the same whole-database
            # files.  Each worker still pays the query-independent
            # share of the scan plus its 1/w slice of the rest.
            w = self.n_workers
            alpha = self.cost.query_indep_fraction
            effective = int(self.db.total_residues * (alpha + (1 - alpha) / w))
            return [FragmentSpec(i, self.db.total_bytes, effective, file_id=0)
                    for i in range(w)]
        n = self.n_fragments or self.n_workers
        byte_sizes = self.db.fragment_bytes(n)
        residue_sizes = self.db.fragment_residues(n)
        return [FragmentSpec(i, byte_sizes[i], residue_sizes[i])
                for i in range(n)]


@dataclass
class ExperimentResult:
    """One measurement point."""

    config: ExperimentConfig
    #: Search-phase execution time (copy subtracted for ORIGINAL, as in
    #: the paper's methodology).  With ``n_queries > 1`` this is the
    #: first (cache-cold) query's time.
    execution_time: float
    #: Copy time per worker (ORIGINAL only; 0 otherwise).
    copy_time: float
    job: JobResult
    tracer: Optional[TraceCollector] = None
    #: Per-query makespans when ``n_queries > 1``.
    query_times: list = field(default_factory=list)

    @property
    def io_fraction(self) -> float:
        return self.job.io_fraction()


def _build_roles(config: ExperimentConfig, cluster_nodes) -> Tuple[list, list]:
    """Return (worker nodes, server nodes) per the placement rule."""
    w, s = config.n_workers, config.n_servers
    if config.placement is Placement.COLOCATED:
        workers = cluster_nodes[1:1 + w]
        servers = cluster_nodes[1:1 + s]
    else:
        workers = cluster_nodes[1:1 + w]
        servers = cluster_nodes[1 + w:1 + w + s]
    return workers, servers


def _cluster_size(config: ExperimentConfig) -> int:
    w, s = config.n_workers, config.n_servers
    if config.variant is Variant.ORIGINAL:
        return 1 + w
    if config.placement is Placement.COLOCATED:
        return 1 + max(w, s)
    return 1 + w + s


def measure_copy_phase(config: ExperimentConfig) -> float:
    """Simulate the original BLAST's staging step: every worker copies
    its fragments from one NFS server to its local disk, concurrently.

    Returns the mean per-worker copy time (what the paper subtracts).
    The copies contend on the NFS server's single disk and NIC, so this
    is usually far slower than the per-worker analytic estimate.
    """
    from repro.fs.nfs import NFS
    from repro.parallel.iomodel import fragment_files

    cluster = Cluster(n_nodes=config.n_workers + 1,
                      params=config.node_params, seed=config.seed)
    sim = cluster.sim
    nfs = NFS(cluster[0])
    fragments = config.fragments
    for spec in fragments:
        for name, size in fragment_files(spec).items():
            nfs.populate(name, size)

    durations = []

    def copier(node, specs):
        local = LocalFS(node)
        client = nfs.client(node)
        t0 = sim.now
        for spec in specs:
            for name, _size in fragment_files(spec).items():
                yield from client.copy_to_local(local, name)
        durations.append(sim.now - t0)

    # Static assignment: fragment i to worker i (round-robin when more
    # fragments than workers).
    assignment = {i: [] for i in range(config.n_workers)}
    for k, spec in enumerate(fragments):
        assignment[k % config.n_workers].append(spec)
    procs = [sim.process(copier(cluster[i + 1], specs))
             for i, specs in assignment.items() if specs]
    sim.run_until_complete(*procs, limit=config.time_limit)
    return sum(durations) / len(durations) if durations else 0.0


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Build the cluster, run the job, return the measurement."""
    if config.variant is Variant.CEFT_PVFS and config.n_servers % 2:
        raise ValueError("CEFT-PVFS needs an even total server count")
    if config.n_workers < 1:
        raise ValueError("need at least one worker")

    cluster = Cluster(n_nodes=_cluster_size(config),
                      params=config.node_params, seed=config.seed)
    sim = cluster.sim
    master = cluster[0]
    workers, servers = _build_roles(config, list(cluster))
    tracer = TraceCollector() if config.trace else None

    # --- file system + worker adapters -------------------------------
    ios: List[WorkerIO] = []
    fs = None
    if config.variant is Variant.ORIGINAL:
        for node in workers:
            local = LocalFS(node)
            ios.append(LocalIO(local, node))
        stressed_nodes = workers[:config.n_stressed_disks]
    elif config.variant is Variant.PVFS:
        fs = PVFS(master, servers, stripe_size=config.stripe_size)
        ios = [ParallelIO(fs.client(node)) for node in workers]
        stressed_nodes = servers[:config.n_stressed_disks]
    else:
        group = config.n_servers // 2
        fs = CEFT(master, servers[:group], servers[group:],
                  stripe_size=config.stripe_size,
                  protocol=config.ceft_protocol,
                  double_parallelism=config.ceft_double_parallelism,
                  skip_hot=config.ceft_skip_hot,
                  load_period=config.ceft_load_period)
        ios = [ParallelIO(fs.client(node)) for node in workers]
        stressed_nodes = servers[:group][:config.n_stressed_disks]

    # --- background load ----------------------------------------------
    for node in stressed_nodes:
        sim.process(disk_stressor(node), name=f"stressor@{node.name}", daemon=True)

    # --- run ------------------------------------------------------------
    if config.n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    query_times = []
    job = None
    for _q in range(config.n_queries):
        job = run_parallel_blast(master, workers, ios, config.fragments,
                                 config.cost, time_limit=config.time_limit,
                                 tracer=tracer)
        query_times.append(job.makespan)
    if fs is not None and hasattr(fs, "stop_monitoring"):
        fs.stop_monitoring()

    copy_time = 0.0
    if config.variant is Variant.ORIGINAL and config.simulate_copy:
        copy_time = measure_copy_phase(config)
    elif config.variant is Variant.ORIGINAL:
        if config.parallelization is Parallelization.QUERY_SEGMENTATION:
            # Query segmentation replicates the whole database.
            per_worker_bytes = float(config.db.total_bytes)
        else:
            per_worker_bytes = config.db.total_bytes / config.n_workers
        copy_time = estimate_copy_time(
            int(per_worker_bytes),
            config.node_params.network.bandwidth,
            config.node_params.disk.write_bandwidth)

    return ExperimentResult(
        config=config,
        execution_time=query_times[0],
        copy_time=copy_time,
        job=job,
        tracer=tracer,
        query_times=query_times,
    )
