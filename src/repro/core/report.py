"""Plain-text rendering of experiment tables and figure series.

The benchmarks print the same rows/series the paper's figures plot;
these helpers keep that output consistent.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

Number = Union[int, float]


def _fmt(x: Number, width: int = 10) -> str:
    if isinstance(x, float):
        if x == 0:
            return f"{0:>{width}.1f}"
        if abs(x) >= 1000 or abs(x) < 0.01:
            return f"{x:>{width}.3g}"
        return f"{x:>{width}.2f}"
    return f"{x:>{width}d}"


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[Union[str, Number]]],
                 col_width: int = 12) -> str:
    """Fixed-width table with a title rule."""
    lines = [title, "=" * max(len(title), 8)]
    lines.append(" ".join(f"{h:>{col_width}s}" for h in headers))
    lines.append(" ".join("-" * col_width for _ in headers))
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, str):
                cells.append(f"{cell:>{col_width}s}")
            else:
                cells.append(_fmt(cell, col_width))
        lines.append(" ".join(cells))
    return "\n".join(lines)


def format_series(title: str, x_label: str, xs: Sequence[Number],
                  series: Dict[str, Sequence[Number]]) -> str:
    """A figure rendered as one row per x value, one column per line."""
    headers = [x_label] + list(series)
    rows: List[List[Number]] = []
    for i, x in enumerate(xs):
        row: List[Number] = [x]
        for name in series:
            row.append(series[name][i])
        rows.append(row)
    return format_table(title, headers, rows)


def format_comparison(title: str, labels: Sequence[str],
                      baseline: Sequence[float],
                      measured: Sequence[float],
                      baseline_name: str = "paper",
                      measured_name: str = "measured") -> str:
    """Paper-vs-measured comparison with ratios."""
    rows = []
    for label, b, m in zip(labels, baseline, measured):
        ratio = m / b if b else float("nan")
        rows.append([label, b, m, ratio])
    return format_table(title, ["case", baseline_name, measured_name, "ratio"],
                        rows)
