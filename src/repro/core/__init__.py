"""Experiment layer: calibration, configuration, runners, metrics,
report formatting — everything needed to regenerate the paper's
evaluation section (Figures 4-9) from the simulated cluster.
"""

from repro.core.calibration import BlastCostModel, default_cost_model
from repro.core.experiment import (
    ExperimentConfig,
    ExperimentResult,
    Parallelization,
    Placement,
    Variant,
    run_experiment,
)
from repro.core.figures import FigureResult, reproduce
from repro.core.metrics import amdahl_speedup_limit, io_fraction, speedup
from repro.core.report import format_series, format_table

__all__ = [
    "BlastCostModel",
    "ExperimentConfig",
    "ExperimentResult",
    "FigureResult",
    "Parallelization",
    "Placement",
    "Variant",
    "amdahl_speedup_limit",
    "default_cost_model",
    "format_series",
    "format_table",
    "io_fraction",
    "reproduce",
    "run_experiment",
    "speedup",
]
