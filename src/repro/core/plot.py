"""ASCII rendering of the paper's figures.

Terminal-friendly scatter and line charts so ``benchmarks/results/``
contains visual reproductions, not just tables.  Log-scale support
matches Figure 4's byte axis (13 B to 220 MB).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

_MARKERS = "ox+*#@%&"


def _ticks(lo: float, hi: float, log: bool, n: int = 5) -> List[float]:
    if log:
        llo, lhi = math.log10(max(lo, 1e-12)), math.log10(max(hi, 1e-12))
        return [10 ** (llo + (lhi - llo) * i / (n - 1)) for i in range(n)]
    return [lo + (hi - lo) * i / (n - 1) for i in range(n)]


def _fmt_tick(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1e4 or abs(v) < 1e-2:
        return f"{v:.0e}"
    if abs(v) >= 100:
        return f"{v:.0f}"
    return f"{v:.3g}"


def _scale(v: float, lo: float, hi: float, extent: int, log: bool) -> int:
    if log:
        v, lo, hi = (math.log10(max(x, 1e-12)) for x in (v, lo, hi))
    if hi == lo:
        return 0
    frac = (v - lo) / (hi - lo)
    return max(0, min(extent - 1, round(frac * (extent - 1))))


def ascii_chart(series: Dict[str, Sequence[Tuple[float, float]]],
                title: str = "", width: int = 64, height: int = 20,
                x_label: str = "", y_label: str = "",
                log_x: bool = False, log_y: bool = False,
                connect: bool = False) -> str:
    """Render (x, y) series as an ASCII chart.

    ``connect`` draws crude vertical interpolation between consecutive
    points (line-chart flavour); otherwise it is a scatter.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("no data")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_lo == y_hi:
        y_hi = y_lo + 1
    if x_lo == x_hi:
        x_hi = x_lo + 1

    grid = [[" "] * width for _ in range(height)]

    for si, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        cells = []
        for x, y in pts:
            col = _scale(x, x_lo, x_hi, width, log_x)
            row = height - 1 - _scale(y, y_lo, y_hi, height, log_y)
            cells.append((col, row))
            grid[row][col] = marker
        if connect:
            cells.sort()
            for (c0, r0), (c1, r1) in zip(cells, cells[1:]):
                for c in range(c0 + 1, c1):
                    # linear interpolation in screen space
                    r = round(r0 + (r1 - r0) * (c - c0) / max(c1 - c0, 1))
                    if grid[r][c] == " ":
                        grid[r][c] = "."

    y_ticks = _ticks(y_lo, y_hi, log_y)
    label_w = max(len(_fmt_tick(t)) for t in y_ticks) + 1
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("")
    for row in range(height):
        frac = 1 - row / (height - 1)
        tick = ""
        # attach a tick label at rows matching tick positions
        for t in y_ticks:
            if _scale(t, y_lo, y_hi, height, log_y) == height - 1 - row:
                tick = _fmt_tick(t)
                break
        lines.append(f"{tick:>{label_w}s} |" + "".join(grid[row]))
    lines.append(" " * label_w + "+" + "-" * width)
    x_tick_line = [" "] * (width + label_w + 10)
    for t in _ticks(x_lo, x_hi, log_x):
        col = label_w + 1 + _scale(t, x_lo, x_hi, width, log_x)
        for i, ch in enumerate(_fmt_tick(t)):
            x_tick_line[col + i] = ch
    lines.append("".join(x_tick_line).rstrip())
    if x_label:
        lines.append(" " * label_w + f"  {x_label}")
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} = {name}"
                        for i, name in enumerate(series))
    lines.append(f"{'':>{label_w}s}  [{legend}]"
                 + (f"   (y: {y_label})" if y_label else ""))
    return "\n".join(lines)


def figure4_scatter(records, title: str = "Figure 4: I/O access pattern"
                    ) -> str:
    """The paper's Figure 4: operation size vs time, log-y scatter."""
    reads = [(r.start, r.size) for r in records if r.op == "read"]
    writes = [(r.start, max(r.size, 1)) for r in records if r.op == "write"]
    return ascii_chart({"read": reads, "write": writes}, title=title,
                       x_label="time (seconds)", y_label="bytes",
                       log_y=True)


def figure_lines(xs: Sequence[float], series: Dict[str, Sequence[float]],
                 title: str, x_label: str, y_label: str = "seconds") -> str:
    """Line-chart form used for Figures 5, 6, 7."""
    data = {name: list(zip(xs, ys)) for name, ys in series.items()}
    return ascii_chart(data, title=title, x_label=x_label, y_label=y_label,
                       connect=True)
