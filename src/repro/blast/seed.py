"""Seed selection from word hits.

Word hits (subject position, query position) pairs are grouped by
diagonal (``subject - query``).  Nucleotide search extends every hit
(one-hit seeding, as in the 1990 BLAST); protein search uses the two-hit
heuristic of Gapped BLAST (Altschul et al. 1997): extension triggers
only when two non-overlapping hits lie on the same diagonal within a
window of A residues.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

#: A seed: (query position, subject position).
Seed = Tuple[int, int]


def group_hits_by_entry(eids: np.ndarray, sids: np.ndarray,
                        spos: np.ndarray, qpos: np.ndarray
                        ) -> List[Tuple[int, int, np.ndarray, np.ndarray]]:
    """Vectorized per-(entry, subject) grouping of batched scan hits.

    The four arrays are parallel rows of a multi-query scan: entry id
    (one per query orientation), subject sequence id, subject-local
    position, query position.  Rows must arrive scan-ordered — within
    one entry, ascending subject position — which is what
    ``QueryBatch.scan`` hit-mapping produces.  One stable sort by entry
    id replaces the per-query Python grouping loop: it preserves each
    entry's scan order (so subject ids stay non-decreasing inside an
    entry and group boundaries are just adjacent differences), and the
    per-group slices come back exactly as the per-query
    ``scan_fragment`` path would have built them.

    Returns ``(entry_id, sid, subject_positions, query_positions)``
    groups, entry-major, ascending ``sid`` within an entry.
    """
    if len(eids) == 0:
        return []
    order = np.argsort(eids, kind="stable")
    e = eids[order]
    s = sids[order]
    sp = spos[order]
    qp = qpos[order]
    cuts = np.nonzero((e[1:] != e[:-1]) | (s[1:] != s[:-1]))[0] + 1
    bounds = np.concatenate([[0], cuts, [len(e)]])
    return [(int(e[bounds[t]]), int(s[bounds[t]]),
             sp[bounds[t]:bounds[t + 1]], qp[bounds[t]:bounds[t + 1]])
            for t in range(len(bounds) - 1)]


def one_hit_seeds_grouped(gids: np.ndarray, spos: np.ndarray,
                          qpos: np.ndarray
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`one_hit_seeds` across many hit groups in one pass.

    *gids* labels each (subject position, query position) hit row with
    its group — one group per (query orientation, subject) pair in the
    batched scan.  A single three-key lexsort replaces the per-group
    sort-and-dedup calls the sequential driver pays per subject: runs
    of consecutive diagonal hits are detected over the whole stream,
    with group boundaries forcing a new run so no run ever spans two
    groups.

    Returns ``(gid, qpos, spos)`` seed arrays ordered group-major and,
    within a group, by (diagonal, subject position) — each group's
    slice is element-for-element what :func:`one_hit_seeds` returns for
    that group alone.
    """
    if len(spos) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    diag = spos - qpos
    order = np.lexsort((spos, diag, gids))
    g = gids[order]
    d = diag[order]
    s = spos[order]
    q = qpos[order]
    new_run = np.empty(len(d), dtype=bool)
    new_run[0] = True
    new_run[1:] = ((g[1:] != g[:-1]) | (d[1:] != d[:-1])
                   | (s[1:] != s[:-1] + 1))
    idx = np.nonzero(new_run)[0]
    return g[idx], q[idx], s[idx]


def one_hit_seeds(spos: np.ndarray, qpos: np.ndarray) -> List[Seed]:
    """Every word hit is a seed, deduplicated to the first hit per
    run of consecutive hits on a diagonal (consecutive overlapping word
    hits would all extend to the same HSP)."""
    if len(spos) == 0:
        return []
    diag = spos - qpos
    order = np.lexsort((spos, diag))
    d = diag[order]
    s = spos[order]
    q = qpos[order]
    # A hit starts a new run when the diagonal changes or the subject
    # position jumps by more than 1.
    new_run = np.empty(len(d), dtype=bool)
    new_run[0] = True
    new_run[1:] = (d[1:] != d[:-1]) | (s[1:] != s[:-1] + 1)
    idx = np.nonzero(new_run)[0]
    # Bulk-convert: tolist() yields Python ints in one pass, which is
    # measurably cheaper than per-element int() on the scan-kernel hot
    # path (one call per subject with hits).
    return list(zip(q[idx].tolist(), s[idx].tolist()))


def two_hit_seeds(spos: np.ndarray, qpos: np.ndarray, word_size: int,
                  window: int = 40) -> List[Seed]:
    """Two-hit seeding: the *second* hit of a close pair on the same
    diagonal becomes the seed (extension then runs through the first)."""
    if len(spos) < 2:
        return []
    diag = spos - qpos
    order = np.lexsort((spos, diag))
    d = diag[order]
    s = spos[order]
    q = qpos[order]
    # NCBI-style stored-hit scan per diagonal: an overlapping follow-up
    # hit (distance < word_size) leaves the stored hit in place; a hit at
    # distance in [word_size, window] triggers a seed; one farther than
    # the window replaces the stored hit.
    seeds: List[Seed] = []
    cur_diag = None
    stored = -(10 ** 12)     # stored hit position on current diagonal
    fired_until = -(10 ** 12)  # suppress re-triggering inside one region
    for i in range(len(d)):
        if d[i] != cur_diag:
            cur_diag = d[i]
            stored = s[i]
            fired_until = -(10 ** 12)
            continue
        dist = s[i] - stored
        if dist < word_size:
            continue                     # overlaps the stored hit
        if dist <= window:
            if s[i] >= fired_until:
                seeds.append((int(q[i]), int(s[i])))
                fired_until = s[i] + window
            stored = s[i]
        else:
            stored = s[i]                # too far: start a new pair
    return seeds
