"""Seed selection from word hits.

Word hits (subject position, query position) pairs are grouped by
diagonal (``subject - query``).  Nucleotide search extends every hit
(one-hit seeding, as in the 1990 BLAST); protein search uses the two-hit
heuristic of Gapped BLAST (Altschul et al. 1997): extension triggers
only when two non-overlapping hits lie on the same diagonal within a
window of A residues.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

#: A seed: (query position, subject position).
Seed = Tuple[int, int]


def one_hit_seeds(spos: np.ndarray, qpos: np.ndarray) -> List[Seed]:
    """Every word hit is a seed, deduplicated to the first hit per
    run of consecutive hits on a diagonal (consecutive overlapping word
    hits would all extend to the same HSP)."""
    if len(spos) == 0:
        return []
    diag = spos - qpos
    order = np.lexsort((spos, diag))
    d = diag[order]
    s = spos[order]
    q = qpos[order]
    # A hit starts a new run when the diagonal changes or the subject
    # position jumps by more than 1.
    new_run = np.empty(len(d), dtype=bool)
    new_run[0] = True
    new_run[1:] = (d[1:] != d[:-1]) | (s[1:] != s[:-1] + 1)
    idx = np.nonzero(new_run)[0]
    # Bulk-convert: tolist() yields Python ints in one pass, which is
    # measurably cheaper than per-element int() on the scan-kernel hot
    # path (one call per subject with hits).
    return list(zip(q[idx].tolist(), s[idx].tolist()))


def two_hit_seeds(spos: np.ndarray, qpos: np.ndarray, word_size: int,
                  window: int = 40) -> List[Seed]:
    """Two-hit seeding: the *second* hit of a close pair on the same
    diagonal becomes the seed (extension then runs through the first)."""
    if len(spos) < 2:
        return []
    diag = spos - qpos
    order = np.lexsort((spos, diag))
    d = diag[order]
    s = spos[order]
    q = qpos[order]
    # NCBI-style stored-hit scan per diagonal: an overlapping follow-up
    # hit (distance < word_size) leaves the stored hit in place; a hit at
    # distance in [word_size, window] triggers a seed; one farther than
    # the window replaces the stored hit.
    seeds: List[Seed] = []
    cur_diag = None
    stored = -(10 ** 12)     # stored hit position on current diagonal
    fired_until = -(10 ** 12)  # suppress re-triggering inside one region
    for i in range(len(d)):
        if d[i] != cur_diag:
            cur_diag = d[i]
            stored = s[i]
            fired_until = -(10 ** 12)
            continue
        dist = s[i] - stored
        if dist < word_size:
            continue                     # overlaps the stored hit
        if dist <= window:
            if s[i] >= fired_until:
                seeds.append((int(q[i]), int(s[i])))
                fired_until = s[i] + window
            stored = s[i]
        else:
            stored = s[i]                # too far: start a new pair
    return seeds
