"""K-mer word machinery: rolling word codes and the query word index.

BLAST builds a lookup table from the *query*'s words and scans each
database sequence against it (Altschul et al. 1990).  For nucleotide
search the table holds exact w-mers (default w=11); for protein search
it holds the *neighbourhood* of each query word: every w-mer whose
BLOSUM62 score against the query word is at least the threshold T
(default w=3, T=11).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from repro.blast.alphabet import DNA, PROTEIN
from repro.blast.score import ScoringScheme


def word_codes(encoded: np.ndarray, k: int, base: int) -> np.ndarray:
    """Rolling base-``base`` codes of every k-mer of *encoded*.

    Returns an empty array when the sequence is shorter than k.
    """
    enc = np.asarray(encoded, dtype=np.int64)
    n = len(enc)
    if n < k:
        return np.empty(0, dtype=np.int64)
    powers = base ** np.arange(k - 1, -1, -1, dtype=np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(enc, k)
    return windows @ powers


def dna_word_codes(encoded: np.ndarray, k: int = 11) -> np.ndarray:
    return word_codes(encoded, k, 4)


def protein_word_codes(encoded: np.ndarray, k: int = 3) -> np.ndarray:
    return word_codes(encoded, k, len(PROTEIN))


#: LRU bound on the all-words cache.  Each entry is an
#: ``(n_letters**k, k)`` int array — 25**3 × 3 × 8 B ≈ 375 KB for the
#: standard protein case, but exotic (k, alphabet) pairs grow fast, so
#: the cache holds at most this many entries.
_NEIGHBOR_CACHE_MAX = 4

_NEIGHBOR_CACHE: "OrderedDict[Tuple[int, int], np.ndarray]" = OrderedDict()


def _all_words(k: int, n_letters: int) -> np.ndarray:
    """(n_letters**k, k) array of every possible word, LRU-cached."""
    key = (k, n_letters)
    cached = _NEIGHBOR_CACHE.get(key)
    if cached is None:
        grids = np.meshgrid(*[np.arange(n_letters)] * k, indexing="ij")
        cached = np.stack([g.ravel() for g in grids], axis=1)
        _NEIGHBOR_CACHE[key] = cached
        while len(_NEIGHBOR_CACHE) > _NEIGHBOR_CACHE_MAX:
            _NEIGHBOR_CACHE.popitem(last=False)
    else:
        _NEIGHBOR_CACHE.move_to_end(key)
    return cached


class WordIndex:
    """Lookup table from word code to query positions."""

    #: Largest code space for which a direct presence bitmap is kept
    #: (4**11 = 4 Mi entries = 4 MiB of bools; DNA w<=11, protein w<=3).
    _BITMAP_LIMIT = 1 << 26

    def __init__(self, codes: np.ndarray, positions: np.ndarray, k: int, base: int):
        """Build from parallel arrays: ``codes[i]`` occurs at query
        position ``positions[i]``.  Prefer the classmethods."""
        order = np.argsort(codes, kind="stable")
        codes = codes[order]
        positions = positions[order]
        self.k = k
        self.base = base
        # Unique codes with offsets into the concatenated positions.
        self.unique_codes, starts = np.unique(codes, return_index=True)
        self.offsets = np.append(starts, len(codes)).astype(np.int64)
        self.positions = positions.astype(np.int64)
        # Presence bitmap: scanning a subject is then a cheap gather,
        # with the (expensive) searchsorted run only on actual hits —
        # the profiled hotspot of database scanning.
        space = base ** k
        if 0 < space <= self._BITMAP_LIMIT:
            self._present = np.zeros(space, dtype=bool)
            self._present[self.unique_codes] = True
        else:
            self._present = None

    # ------------------------------------------------------------------
    @classmethod
    def for_dna(cls, query: np.ndarray, k: int = 11,
                skip: Optional[np.ndarray] = None) -> "WordIndex":
        """Exact-word index of a DNA query.

        *skip*, when given, is a boolean array over word positions
        (True = do not index, e.g. low-complexity regions masked by
        :func:`repro.blast.filter.dust_mask`)."""
        codes = dna_word_codes(query, k)
        positions = np.arange(len(codes))
        if skip is not None and len(skip) == len(codes):
            keep = ~np.asarray(skip, dtype=bool)
            codes, positions = codes[keep], positions[keep]
        return cls(codes, positions, k, 4)

    @classmethod
    def for_protein(cls, query: np.ndarray, scheme: ScoringScheme,
                    k: int = 3, threshold: int = 11,
                    skip: Optional[np.ndarray] = None) -> "WordIndex":
        """Neighbourhood index of a protein query.

        Every word scoring >= *threshold* against some query word is
        entered at that query position.

        The alphabet size comes from the matrix *columns* (the subject
        axis) so rectangular position-specific matrices (PSI-BLAST
        PSSMs, rows = query positions) work unchanged.
        """
        n_letters = scheme.matrix.shape[1]
        m = len(query) - k + 1
        if m <= 0:
            return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                       k, n_letters)
        words = _all_words(k, n_letters)                   # (W, k)
        powers = n_letters ** np.arange(k - 1, -1, -1, dtype=np.int64)
        all_codes = words @ powers                         # (W,)
        codes_out = []
        pos_out = []
        for qpos in range(m):
            if skip is not None and qpos < len(skip) and skip[qpos]:
                continue
            qword = query[qpos:qpos + k]
            # score of every candidate word against this query word
            scores = np.zeros(len(words), dtype=np.int64)
            for j in range(k):
                scores += scheme.matrix[qword[j], words[:, j]]
            hits = all_codes[scores >= threshold]
            codes_out.append(hits)
            pos_out.append(np.full(len(hits), qpos, dtype=np.int64))
        codes = np.concatenate(codes_out) if codes_out else np.empty(0, np.int64)
        positions = np.concatenate(pos_out) if pos_out else np.empty(0, np.int64)
        return cls(codes, positions, k, n_letters)

    # ------------------------------------------------------------------
    @property
    def n_words(self) -> int:
        return len(self.positions)

    def __contains__(self, code: int) -> bool:
        i = np.searchsorted(self.unique_codes, code)
        return i < len(self.unique_codes) and self.unique_codes[i] == code

    def query_positions(self, code: int) -> np.ndarray:
        i = np.searchsorted(self.unique_codes, code)
        if i >= len(self.unique_codes) or self.unique_codes[i] != code:
            return np.empty(0, dtype=np.int64)
        return self.positions[self.offsets[i]:self.offsets[i + 1]]

    # ------------------------------------------------------------------
    def scan(self, subject_codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Find all word hits in a subject.

        Returns (subject_positions, query_positions), one entry per
        (subject word, matching query word) pair.
        """
        if len(subject_codes) == 0 or len(self.unique_codes) == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        if self._present is not None:
            spos = np.nonzero(self._present[subject_codes])[0]
            if len(spos) == 0:
                return (np.empty(0, dtype=np.int64),
                        np.empty(0, dtype=np.int64))
            idx_clipped = np.searchsorted(self.unique_codes,
                                          subject_codes[spos])
        else:
            idx = np.searchsorted(self.unique_codes, subject_codes)
            idx_clipped = np.minimum(idx, len(self.unique_codes) - 1)
            valid = self.unique_codes[idx_clipped] == subject_codes
            spos = np.nonzero(valid)[0]
            idx_clipped = idx_clipped[spos]
        if len(spos) == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        uidx = idx_clipped
        starts = self.offsets[uidx]
        ends = self.offsets[uidx + 1]
        counts = ends - starts
        total = int(counts.sum())
        # Expand ranges [starts_i, ends_i) into one flat index vector.
        rep_starts = np.repeat(starts, counts)
        within = np.arange(total) - np.repeat(
            np.concatenate([[0], np.cumsum(counts)[:-1]]), counts)
        flat = rep_starts + within
        qpos = self.positions[flat]
        spos_expanded = np.repeat(spos, counts)
        return (spos_expanded, qpos)
