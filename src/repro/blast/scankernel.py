"""Concatenated-database scan kernel and the ScanCache.

The naive search driver scans the query word index against one subject
sequence at a time: per subject it re-derives rolling word codes, runs
``WordIndex.scan``, and pays Python/numpy dispatch overhead ~1400 times
per query on even a 1 M-base fragment.  For the paper's workload — a
568-char blastn query against the 1.76 M-sequence nt database — that
per-sequence loop *is* the compute half of the reproduction.

This module makes the **fragment**, not the sequence, the unit of the
hot loop (the same contiguous-layout lesson the paper's parallel file
systems apply to I/O: pack once, then operate in bulk):

* :func:`build_scan_structures` concatenates a fragment's encoded
  sequences into one flat array with one-symbol sentinel separators,
  computes rolling word codes for the whole concatenation **once**, and
  masks out every window that spans a sentinel (those windows would
  otherwise manufacture chimeric words across sequence boundaries);
* :func:`scan_fragment` runs a query :class:`~repro.blast.kmer.WordIndex`
  against the cached codes in one shot and maps the hits back to
  ``(sequence id, subject offset)`` groups via ``np.searchsorted`` on
  the cached per-sequence offsets table;
* :class:`ScanCache` keeps the expensive per-fragment artifacts
  (concatenation, offsets table, word codes) in a bounded LRU keyed by
  fragment identity, so a stream of queries against the same fragments
  — the warm-cache and query-stream workloads — pays the packing cost
  once per fragment.

The kernel is exact: for every window that lies inside one sequence the
concatenated code equals the per-sequence code, so downstream seeding /
extension sees byte-identical hits (``tests/test_blast_scankernel.py``
asserts old-vs-new equivalence on randomized databases).
"""

from __future__ import annotations

import itertools
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blast.kmer import WordIndex

#: Default bounds of the process-wide ScanCache: at most 8 fragments
#: and ~256 MB of cached structures (a 1 M-residue fragment costs
#: ~17 bytes/residue: 1 for the concatenation, 8 for codes, 8 for the
#: valid-window positions).
DEFAULT_MAX_ENTRIES = 8
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_token_counter = itertools.count(1)


def db_token(db) -> int:
    """The database's scan-cache identity token, assigned on first use.

    Tokens are the process-local half of the key every scan-structure
    consumer shares (the :class:`ScanCache`, the shared-memory pack
    registry of :mod:`repro.exec`): monotonically increasing, so a
    recycled ``id()`` can never alias a dead database.  Falls back to
    ``id(db)`` for objects that refuse attributes.
    """
    token = getattr(db, "_scan_token", None)
    if token is None:
        token = next(_token_counter)
        try:
            db._scan_token = token
        except (AttributeError, TypeError):  # pragma: no cover
            token = id(db)
    return token


@dataclass
class ScanStructures:
    """Cached per-fragment scan artifacts.

    ``concat`` holds every sequence of the fragment back to back,
    separated by single sentinel symbols (value ``base``, one above the
    alphabet).  ``codes`` are the rolling word codes of every window
    that does **not** span a sentinel; ``code_pos[i]`` is the position
    of ``codes[i]`` in ``concat``.  ``starts``/``lengths`` give each
    sequence's slice of ``concat``.
    """

    k: int
    base: int
    n_sequences: int
    total_residues: int
    concat: np.ndarray      # uint8, length sum(lengths) + (n-1) sentinels
    starts: np.ndarray      # int64 (n,), start offset of each sequence
    lengths: np.ndarray     # int64 (n,)
    codes: np.ndarray       # int64, valid word codes only
    code_pos: np.ndarray    # int64, concat position of each valid code

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the cached arrays."""
        return (self.concat.nbytes + self.starts.nbytes +
                self.lengths.nbytes + self.codes.nbytes +
                self.code_pos.nbytes)

    def subject(self, sid: int) -> np.ndarray:
        """View of sequence *sid* inside the concatenation."""
        lo = int(self.starts[sid])
        return self.concat[lo:lo + int(self.lengths[sid])]


def build_scan_structures(db, k: int, base: int) -> ScanStructures:
    """Pack one database fragment for bulk scanning.

    *db* is anything with the :class:`~repro.blast.seqdb.SequenceDB`
    access surface (``__len__``, ``lengths``, ``sequence``).  Sequences
    shorter than *k* (including empty ones) contribute no valid windows
    and therefore can never produce hits — exactly like the
    per-sequence scan, where their code arrays are empty.
    """
    n = len(db)
    lengths = np.asarray(db.lengths() if n else [], dtype=np.int64)
    # Sequence i starts after all previous sequences plus i sentinels.
    starts = np.zeros(n, dtype=np.int64)
    if n:
        np.cumsum(lengths[:-1] + 1, out=starts[1:])
    total = int(lengths.sum()) if n else 0
    length = total + max(n - 1, 0)

    # Lazy databases expose a bulk loader: one contiguous payload read
    # beats n seek+read round trips when packing a whole fragment.
    preload = getattr(db, "preload_sequences", None)
    if preload is not None:
        preload()

    sentinel = base
    concat = np.full(length, sentinel, dtype=np.uint8)
    for i in range(n):
        lo = int(starts[i])
        concat[lo:lo + int(lengths[i])] = db.sequence(i)

    n_windows = length - k + 1
    if n_windows <= 0:
        codes = np.empty(0, dtype=np.int64)
        code_pos = np.empty(0, dtype=np.int64)
    else:
        # Rolling codes by Horner evaluation: k passes over the flat
        # array instead of a (n_windows, k) strided matmul.  Sentinel
        # digits are worth ``base``, so the widest intermediate is
        # bounded by (base+1)**k — int32 when that fits (every standard
        # word size), int64 otherwise.
        code_dtype = np.int32 if (base + 1) ** k < 2 ** 31 else np.int64
        codes_full = np.zeros(n_windows, dtype=code_dtype)
        for j in range(k):
            codes_full *= base
            codes_full += concat[j:j + n_windows]
        # A window is valid iff it contains no sentinel — i.e. iff it
        # lies wholly inside one sequence.  The sentinel positions are
        # known from the layout, so the valid positions are constructed
        # directly (sequence i contributes ``starts[i] + arange(w_i)``
        # windows) instead of the old cumsum-over-sentinels scan, which
        # cost three extra full-length passes over the concatenation.
        per_seq = np.maximum(lengths - (k - 1), 0)
        nz = per_seq > 0
        reps = per_seq[nz]
        total_windows = int(reps.sum())
        if total_windows:
            rep_starts = np.repeat(starts[nz], reps)
            within = np.arange(total_windows, dtype=np.int64) - np.repeat(
                np.concatenate([[0], np.cumsum(reps)[:-1]]), reps)
            code_pos = rep_starts + within
        else:
            code_pos = np.empty(0, dtype=np.int64)
        codes = codes_full[code_pos]

    return ScanStructures(k=k, base=base, n_sequences=n,
                          total_residues=total, concat=concat,
                          starts=starts, lengths=lengths,
                          codes=codes, code_pos=code_pos)


def scan_fragment(index: WordIndex, structs: ScanStructures
                  ) -> List[Tuple[int, np.ndarray, np.ndarray]]:
    """Scan a query word index against a packed fragment.

    Returns ``(sid, subject_positions, query_positions)`` triples in
    ascending ``sid`` order, one per sequence with at least one word
    hit; positions are local to the sequence, exactly as the
    per-sequence ``index.scan`` would have produced them.
    """
    cpos, qpos = index.scan(structs.codes)
    if len(cpos) == 0:
        return []
    gpos = structs.code_pos[cpos]            # ascending concat positions
    sids = np.searchsorted(structs.starts, gpos, side="right") - 1
    local = gpos - structs.starts[sids]
    cuts = np.nonzero(np.diff(sids))[0] + 1
    bounds = np.concatenate([[0], cuts, [len(sids)]])
    return [(int(sids[bounds[t]]),
             local[bounds[t]:bounds[t + 1]],
             qpos[bounds[t]:bounds[t + 1]])
            for t in range(len(bounds) - 1)]


class QueryBatch:
    """N query word-indexes packed into one combined lookup structure.

    The serial driver pays one full pass over a fragment's cached word
    codes *per query orientation* (the presence-bitmap gather inside
    ``WordIndex.scan`` touches every code).  A batch folds every
    entry's words into one sorted table — ``unique_codes`` with
    ``offsets`` into parallel ``positions``/``eids`` arrays, plus one
    shared presence bitmap — so a single pass serves all N entries and
    every hit comes back tagged with the entry id it belongs to.

    Entries are whatever the caller treats as independent scans; the
    batched search driver uses one entry per (query, orientation).  All
    indexes must share ``(k, base)``.  Within one subject position the
    expanded hits appear entry-major, and within an entry in that
    index's own order — so filtering the combined hit stream down to
    one entry reproduces exactly what ``index.scan`` would have
    returned for it (the byte-identity argument of the batched path).
    """

    def __init__(self, indexes: Sequence[WordIndex]):
        if not indexes:
            raise ValueError("QueryBatch needs at least one index")
        k, base = indexes[0].k, indexes[0].base
        for ix in indexes[1:]:
            if ix.k != k or ix.base != base:
                raise ValueError(
                    f"all indexes in a batch must share (k, base); got "
                    f"({ix.k}, {ix.base}) vs ({k}, {base})")
        self.k = k
        self.base = base
        self.n_entries = len(indexes)
        codes_parts: List[np.ndarray] = []
        pos_parts: List[np.ndarray] = []
        eid_parts: List[np.ndarray] = []
        for eid, ix in enumerate(indexes):
            if ix.n_words == 0:
                continue
            counts = np.diff(ix.offsets)
            # ``positions`` is already stored code-major inside the
            # index; repeating the unique codes by their counts
            # reconstructs the aligned (code, position) pairs.
            codes_parts.append(np.repeat(ix.unique_codes, counts))
            pos_parts.append(ix.positions)
            eid_parts.append(np.full(ix.n_words, eid, dtype=np.int64))
        if codes_parts:
            codes = np.concatenate(codes_parts)
            positions = np.concatenate(pos_parts)
            eids = np.concatenate(eid_parts)
        else:
            codes = np.empty(0, dtype=np.int64)
            positions = np.empty(0, dtype=np.int64)
            eids = np.empty(0, dtype=np.int64)
        # Stable sort keeps, within one code, the entry-major order of
        # the concatenation — and within one entry, the index's own
        # (already code-sorted) position order.
        order = np.argsort(codes, kind="stable")
        codes = codes[order]
        self.positions = positions[order]
        self.eids = eids[order]
        self.unique_codes, starts = np.unique(codes, return_index=True)
        self.offsets = np.append(starts, len(codes)).astype(np.int64)
        space = base ** k
        if 0 < space <= WordIndex._BITMAP_LIMIT:
            self._present = np.zeros(space, dtype=bool)
            self._present[self.unique_codes] = True
        else:
            self._present = None

    @property
    def n_words(self) -> int:
        return len(self.positions)

    def scan(self, subject_codes: np.ndarray
             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Find all word hits of every entry in one subject pass.

        Returns ``(subject_positions, entry_ids, query_positions)``,
        one row per (subject word, matching entry word) pair — the
        multi-entry form of :meth:`WordIndex.scan`.
        """
        empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                 np.empty(0, dtype=np.int64))
        if len(subject_codes) == 0 or len(self.unique_codes) == 0:
            return empty
        if self._present is not None:
            spos = np.nonzero(self._present[subject_codes])[0]
            if len(spos) == 0:
                return empty
            uidx = np.searchsorted(self.unique_codes, subject_codes[spos])
        else:
            idx = np.searchsorted(self.unique_codes, subject_codes)
            idx_clipped = np.minimum(idx, len(self.unique_codes) - 1)
            valid = self.unique_codes[idx_clipped] == subject_codes
            spos = np.nonzero(valid)[0]
            if len(spos) == 0:
                return empty
            uidx = idx_clipped[spos]
        starts = self.offsets[uidx]
        counts = self.offsets[uidx + 1] - starts
        total = int(counts.sum())
        rep_starts = np.repeat(starts, counts)
        within = np.arange(total) - np.repeat(
            np.concatenate([[0], np.cumsum(counts)[:-1]]), counts)
        flat = rep_starts + within
        return (np.repeat(spos, counts), self.eids[flat],
                self.positions[flat])


def scan_fragment_batch(batch: QueryBatch, structs: ScanStructures
                        ) -> List[Tuple[int, int, np.ndarray, np.ndarray]]:
    """Scan a whole query batch against a packed fragment in one pass.

    Returns ``(entry_id, sid, subject_positions, query_positions)``
    groups, entry-major with ascending ``sid`` inside each entry.  For
    every entry the groups are exactly what :func:`scan_fragment` would
    have produced for that entry's index alone — one combined bitmap
    gather, ``searchsorted`` hit-mapping pass, and grouping sort serve
    all N entries instead of N separate traversals.
    """
    from repro.blast.seed import group_hits_by_entry

    cpos, eids, qpos = batch.scan(structs.codes)
    if len(cpos) == 0:
        return []
    gpos = structs.code_pos[cpos]
    sids = np.searchsorted(structs.starts, gpos, side="right") - 1
    local = gpos - structs.starts[sids]
    return group_hits_by_entry(eids, sids, local, qpos)


class ScanCache:
    """Bounded LRU cache of :class:`ScanStructures`, keyed by fragment.

    The key combines a per-database token (assigned on first use, so a
    recycled ``id()`` can never alias), the database's sequence and
    residue counts plus its mutation version (so adding a sequence
    invalidates stale entries), and the word size / alphabet base.

    Entries are evicted least-recently-used when either bound —
    ``max_entries`` or ``max_bytes`` — is exceeded; the most recent
    entry is always retained, even if it alone exceeds ``max_bytes``.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 max_bytes: int = DEFAULT_MAX_BYTES):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[tuple, ScanStructures]" = OrderedDict()
        self._finalized: set = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _db_key(self, db) -> tuple:
        token = db_token(db)
        if token not in self._finalized:
            self._finalized.add(token)
            try:
                weakref.finalize(db, self.evict, token)
            except TypeError:  # pragma: no cover
                pass
        return (token, len(db), db.total_residues,
                getattr(db, "_version", 0))

    def evict(self, token: int) -> int:
        """Explicitly drop every entry built from the database with
        *token*; returns how many entries were dropped.

        The ``weakref`` finalizer only covers same-process lifetime: a
        pack attached in a pool worker lives in *that* process, so a
        long-lived parent would otherwise pin entries for children that
        are already dead.  The pool teardown path calls this directly.
        """
        keys = [k for k in self._entries if k[0][0] == token]
        for key in keys:
            del self._entries[key]
        return len(keys)

    # ------------------------------------------------------------------
    def get(self, db, k: int, base: int) -> ScanStructures:
        """Return the packed structures for *db*, building on miss."""
        key = (self._db_key(db), k, base)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        entry = build_scan_structures(db, k, base)
        self._entries[key] = entry
        self._evict()
        return entry

    def put(self, db, k: int, base: int, structs: ScanStructures) -> None:
        """Seed the cache with externally built structures for *db*.

        The process pool uses this to prime a worker's cache with
        shared-memory-backed packs so ``search(engine="scan")`` attaches
        zero-copy instead of repacking.  Same LRU accounting as a miss.
        """
        key = (self._db_key(db), k, base)
        self._entries[key] = structs
        self._entries.move_to_end(key)
        self._evict()

    def _evict(self) -> None:
        while len(self._entries) > 1 and (
                len(self._entries) > self.max_entries
                or self.total_bytes > self.max_bytes):
            self._entries.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus current occupancy."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "entries": len(self._entries),
                "bytes": self.total_bytes}

    def clear(self) -> None:
        """Drop every cached entry (counters are kept)."""
        self._entries.clear()


_DEFAULT_CACHE = ScanCache()


def default_scan_cache() -> ScanCache:
    """The process-wide cache used by :func:`repro.blast.search.search`
    when no explicit cache is passed."""
    return _DEFAULT_CACHE
