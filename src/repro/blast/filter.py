"""Low-complexity filtering (NCBI's DUST and SEG equivalents).

Real BLAST masks low-complexity query regions before seeding —
otherwise poly-A runs, microsatellites, and biased protein segments
flood the hit lists with biologically meaningless matches.

* :func:`dust_mask` — nucleotide filter, after Tatusov & Lipman's DUST:
  score 64-base windows by triplet over-representation.
* :func:`seg_mask` — protein filter in the spirit of SEG (Wootton &
  Federhen): Shannon entropy of 12-residue windows.

Masks are boolean arrays (True = masked); :func:`masked_positions` maps
a mask to query word positions the :class:`~repro.blast.kmer.WordIndex`
should skip.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def dust_score(window: np.ndarray) -> float:
    """DUST score of one encoded-DNA window: sum over triplets of
    c*(c-1)/2, normalised by window length - 3 (larger = lower
    complexity; a homopolymer scores ~ (w-2)(w-3)/2 / (w-3))."""
    w = len(window)
    if w < 4:
        return 0.0
    trip = window[:-2].astype(np.int64) * 16 + window[1:-1] * 4 + window[2:]
    counts = np.bincount(trip, minlength=64)
    raw = float((counts * (counts - 1) // 2).sum())
    return raw / (w - 3)


def dust_mask(encoded: np.ndarray, window: int = 64,
              threshold: float = 2.0) -> np.ndarray:
    """Boolean mask of low-complexity bases (True = masked).

    Windows whose DUST score exceeds *threshold* are masked whole; the
    default threshold 2.0 leaves random sequence untouched (its
    expected score is ~0.5) while catching homopolymers and short
    tandem repeats.
    """
    enc = np.asarray(encoded)
    n = len(enc)
    mask = np.zeros(n, dtype=bool)
    if n < 4:
        return mask
    step = max(window // 2, 1)
    for start in range(0, n, step):
        chunk = enc[start:start + window]
        if len(chunk) < 4:
            break
        if dust_score(chunk) > threshold:
            mask[start:start + len(chunk)] = True
        if start + window >= n:
            break
    return mask


def shannon_entropy(window: np.ndarray, n_symbols: int) -> float:
    """Shannon entropy (bits) of a window of symbol codes."""
    counts = np.bincount(window.astype(np.int64), minlength=n_symbols)
    probs = counts[counts > 0] / len(window)
    return float(-(probs * np.log2(probs)).sum())


def seg_mask(encoded: np.ndarray, window: int = 12,
             threshold: float = 2.2, n_symbols: int = 25) -> np.ndarray:
    """Boolean mask of low-entropy protein segments (True = masked).

    Random 20-letter protein windows of length 12 have entropy ~3.4
    bits; biased segments (poly-Q, PEST regions) fall below the
    threshold.
    """
    enc = np.asarray(encoded)
    n = len(enc)
    mask = np.zeros(n, dtype=bool)
    if n < window:
        return mask
    for start in range(0, n - window + 1):
        if shannon_entropy(enc[start:start + window], n_symbols) < threshold:
            mask[start:start + window] = True
    return mask


def masked_positions(mask: np.ndarray, word_size: int) -> np.ndarray:
    """Word start positions that overlap any masked base.

    A word starting at p covers [p, p+word_size); it is skipped if any
    covered position is masked.
    """
    n = len(mask)
    n_words = n - word_size + 1
    if n_words <= 0:
        return np.zeros(0, dtype=bool)
    windows = np.lib.stride_tricks.sliding_window_view(mask, word_size)
    return windows.any(axis=1)


def apply_query_filter(encoded: np.ndarray, is_protein: bool,
                       word_size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Convenience: (base mask, word-position mask) for a query."""
    mask = seg_mask(encoded) if is_protein else dust_mask(encoded)
    return mask, masked_positions(mask, word_size)
