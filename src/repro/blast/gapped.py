"""Banded gapped alignment.

Promising ungapped HSPs are refined with a banded affine-gap local
alignment (Smith–Waterman restricted to a diagonal band around the
HSP's diagonal — the moral equivalent of Gapped BLAST's X-dropoff
gapped extension).  The DP is vectorised across the band for each query
row; exact affine traceback recovers endpoints, alignment length, and
identity count.

DP formulation (Gotoh): for query index i (1..m) and subject index j::

    E(i,j) = best score ending at (i,j) with a gap in the query
             (last move consumes subject only, from (i, j-1))
    F(i,j) = best score ending at (i,j) with a gap in the subject
             (last move consumes query only, from (i-1, j))
    H(i,j) = max(0, H(i-1,j-1) + s(q_i, s_j), E(i,j), F(i,j))

Band slot b holds subject column j = i + diag - band + b, so cell
(i-1, j-1) is slot b of the previous row, (i-1, j) is slot b+1 of the
previous row, and (i, j-1) is slot b-1 of the same row.

The within-row E recurrence ``E[b] = max(H[b-1] - open, E[b-1] - ext)``
is a left-to-right scan, but it closes in one vectorised pass: with
``T[a] = H[a] + ext * a`` and ``P`` its running maximum,
``E[b] = P[b-1] - open - ext*(b-1)`` (each candidate opening point
pays the open penalty once plus ``ext`` per slot travelled).  The
identity requires ``open >= ext`` (otherwise re-opening a gap inside a
gap could beat extending it, which the prefix maximum cannot see), and
the open/extend traceback tie-break matches the scan's only for
``open > ext`` — so the vectorised pass runs exactly when
``gap_open > gap_extend`` (every standard scheme) and the reference
scan loop handles the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.blast.score import ScoringScheme

NEG = -(10 ** 9)

# Traceback codes for the H matrix.
_STOP, _DIAG, _FROM_F, _FROM_E = 0, 1, 2, 3

_INT64_MIN = np.iinfo(np.int64).min


def _e_scan_loop(H: np.ndarray, codes: np.ndarray, pe: np.ndarray,
                 go: int, ge: int) -> np.ndarray:
    """Reference within-row E scan: left-to-right, updating H in place.

    ``H``/``codes`` are modified in place; returns E.  Kept as the
    fallback for schemes with ``gap_open <= gap_extend`` and as the
    equivalence oracle for the vectorised scan."""
    w = len(H)
    E = np.full(w, NEG, dtype=np.int64)
    for b in range(1, w):
        e_open = H[b - 1] - go
        e_ext = E[b - 1] - ge
        E[b] = e_open if e_open >= e_ext else e_ext
        pe[b] = 0 if e_open >= e_ext else 1
        if E[b] > H[b]:
            H[b] = E[b]
            codes[b] = _FROM_E
    return E


def _e_scan_vectorized(H: np.ndarray, codes: np.ndarray, pe: np.ndarray,
                       go: int, ge: int, slot_ge: np.ndarray,
                       open_cost: np.ndarray, scratch: np.ndarray
                       ) -> np.ndarray:
    """Closed-form E scan (requires ``go > ge``); same contract as
    :func:`_e_scan_loop`.

    ``slot_ge`` is the precomputed ``ge * arange(w)`` vector,
    ``open_cost`` is ``go + slot_ge[:-1]``, and ``scratch`` is a
    reusable ``(w,)`` int64 buffer.  Because ``go > ge``, opening a gap
    from an E-derived H cell can never beat extending that E, so E
    depends only on the pre-E H values — which makes it a prefix
    maximum; the same inequality makes the open/extend tie-break of the
    scan loop reproduce exactly."""
    w = len(H)
    T = H + slot_ge
    P = np.maximum.accumulate(T, out=scratch)
    E = np.empty(w, dtype=np.int64)
    E[0] = NEG
    np.subtract(P[:-1], open_cost, out=E[1:])
    # pe[b] = 1 (extended) iff the best opening point lies before b-1.
    prev_best = np.empty(w - 1, dtype=np.int64)
    prev_best[0] = _INT64_MIN
    prev_best[1:] = P[:-2]
    np.less(T[:-1], prev_best, out=pe[1:].view(bool))
    take_e = E > H
    H[take_e] = E[take_e]
    codes[take_e] = _FROM_E
    return E


@dataclass
class GappedAlignment:
    """Result of a banded gapped extension."""

    q_start: int
    q_end: int     # exclusive
    s_start: int
    s_end: int     # exclusive
    score: int
    identities: int
    align_len: int
    #: Alignment operations, query-start to query-end: "M" aligned pair,
    #: "D" query residue vs gap, "I" gap vs subject residue.
    ops: str = ""

    @property
    def identity(self) -> float:
        return self.identities / self.align_len if self.align_len else 0.0


def banded_local_align(query: np.ndarray, subject: np.ndarray,
                       diag: int, scheme: ScoringScheme,
                       band: int = 24,
                       identity_query: Optional[np.ndarray] = None
                       ) -> GappedAlignment:
    """Banded affine local alignment around diagonal ``diag = s - q``.

    ``identity_query`` supplies the residue letters for identity
    counting when *query* holds something else — PSI-BLAST passes
    position indices as *query* (so ``scheme.matrix`` is a PSSM) and
    the actual residues here.
    """
    id_query = query if identity_query is None else identity_query
    m = len(query)
    n = len(subject)
    if m == 0 or n == 0:
        return GappedAlignment(0, 0, 0, 0, 0, 0, 0)
    w = 2 * band + 1
    go = scheme.gap_open
    ge = scheme.gap_extend

    ptrH = np.zeros((m + 1, w), dtype=np.int8)
    # ptrE / ptrF: 1 if the gap state was *extended* (came from the same
    # gap matrix), 0 if freshly *opened* (came from H).
    ptrE = np.zeros((m + 1, w), dtype=np.int8)
    ptrF = np.zeros((m + 1, w), dtype=np.int8)

    best = 0
    best_pos = (0, 0)
    subject_idx = subject.astype(np.intp)
    band_arange = np.arange(w)
    slot_ge = ge * band_arange
    open_cost = go + slot_ge[:-1]
    vector_scan = go > ge

    # Per-row substitution gathers and validity masks, computed in one
    # shot: row i uses slice i-1 of each.
    cols = np.arange(1, m + 1)[:, None] + (diag - band) + band_arange
    valid_all = (cols >= 1) & (cols <= n)
    row_invalid = ~valid_all.all(axis=1)
    safe_all = np.clip(cols - 1, 0, n - 1)
    sub_all = scheme.matrix[query[:, None],
                            subject_idx[safe_all]].astype(np.int64)

    # Ping-pong row buffers (allocation per row is measurable at this
    # band width); up_* carry a trailing NEG that never changes.
    bufs = [np.zeros((2, w), dtype=np.int64),
            np.full((2, w), NEG, dtype=np.int64)]
    diag_score = np.empty(w, dtype=np.int64)
    up_H = np.full(w, NEG, dtype=np.int64)
    up_F = np.full(w, NEG, dtype=np.int64)
    F_open = np.empty(w, dtype=np.int64)
    F_ext = np.empty(w, dtype=np.int64)
    scratch = np.empty(w, dtype=np.int64)

    for i in range(1, m + 1):
        cur = i & 1
        H_prev = bufs[0][1 - cur]
        F_prev = bufs[1][1 - cur]
        H = bufs[0][cur]
        F = bufs[1][cur]

        np.add(H_prev, sub_all[i - 1], out=diag_score)

        # F: gap in subject, from row i-1 slot b+1.
        up_H[:-1] = H_prev[1:]
        up_F[:-1] = F_prev[1:]
        np.subtract(up_H, go, out=F_open)
        np.subtract(up_F, ge, out=F_ext)
        np.maximum(F_open, F_ext, out=F)
        np.greater(F_ext, F_open, out=ptrF[i].view(bool))

        # H before E (E needs H within the row, computed left to right);
        # diag >= max(diag, 0) iff diag >= 0, and _DIAG/_STOP are 1/0.
        codes = ptrH[i]
        np.maximum(diag_score, 0, out=H)
        np.greater_equal(diag_score, 0, out=codes.view(bool))
        take_f = F > H
        np.maximum(H, F, out=H)
        codes[take_f] = _FROM_F

        if vector_scan:
            _e_scan_vectorized(H, codes, ptrE[i], go, ge, slot_ge,
                               open_cost, scratch)
        else:
            _e_scan_loop(H, codes, ptrE[i], go, ge)

        if row_invalid[i - 1]:
            invalid = ~valid_all[i - 1]
            H[invalid] = 0
            codes[invalid] = _STOP
            F[invalid] = NEG

        row_best = int(H.max())
        if row_best > best:
            best = row_best
            best_pos = (i, int(np.argmax(H)))

    if best <= 0:
        return GappedAlignment(0, 0, 0, 0, 0, 0, 0)

    # ------------------------------------------------------------ traceback
    i, b = best_pos
    j = i + diag - band + b
    q_end, s_end = i, j
    identities = 0
    align_len = 0
    ops_rev = []
    state = "H"
    while i > 0 and 0 <= b < w:
        if state == "H":
            code = ptrH[i, b]
            if code == _STOP:
                break
            if code == _DIAG:
                if id_query[i - 1] == subject[j - 1]:
                    identities += 1
                align_len += 1
                ops_rev.append("M")
                i -= 1
                j -= 1
                # same slot
            elif code == _FROM_F:
                state = "F"
            else:
                state = "E"
        elif state == "F":
            # consume one query residue (gap in subject)
            extended = ptrF[i, b]
            align_len += 1
            ops_rev.append("D")
            i -= 1
            b += 1
            state = "F" if extended else "H"
        else:  # state == "E": consume one subject residue (gap in query)
            extended = ptrE[i, b]
            align_len += 1
            ops_rev.append("I")
            j -= 1
            b -= 1
            state = "E" if extended else "H"
    return GappedAlignment(
        q_start=i, q_end=q_end, s_start=j, s_end=s_end,
        score=best, identities=identities, align_len=align_len,
        ops="".join(reversed(ops_rev)),
    )
