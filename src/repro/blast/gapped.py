"""Banded gapped alignment.

Promising ungapped HSPs are refined with a banded affine-gap local
alignment (Smith–Waterman restricted to a diagonal band around the
HSP's diagonal — the moral equivalent of Gapped BLAST's X-dropoff
gapped extension).  The DP is vectorised across the band for each query
row; exact affine traceback recovers endpoints, alignment length, and
identity count.

DP formulation (Gotoh): for query index i (1..m) and subject index j::

    E(i,j) = best score ending at (i,j) with a gap in the query
             (last move consumes subject only, from (i, j-1))
    F(i,j) = best score ending at (i,j) with a gap in the subject
             (last move consumes query only, from (i-1, j))
    H(i,j) = max(0, H(i-1,j-1) + s(q_i, s_j), E(i,j), F(i,j))

Band slot b holds subject column j = i + diag - band + b, so cell
(i-1, j-1) is slot b of the previous row, (i-1, j) is slot b+1 of the
previous row, and (i, j-1) is slot b-1 of the same row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.blast.score import ScoringScheme

NEG = -(10 ** 9)

# Traceback codes for the H matrix.
_STOP, _DIAG, _FROM_F, _FROM_E = 0, 1, 2, 3


@dataclass
class GappedAlignment:
    """Result of a banded gapped extension."""

    q_start: int
    q_end: int     # exclusive
    s_start: int
    s_end: int     # exclusive
    score: int
    identities: int
    align_len: int
    #: Alignment operations, query-start to query-end: "M" aligned pair,
    #: "D" query residue vs gap, "I" gap vs subject residue.
    ops: str = ""

    @property
    def identity(self) -> float:
        return self.identities / self.align_len if self.align_len else 0.0


def banded_local_align(query: np.ndarray, subject: np.ndarray,
                       diag: int, scheme: ScoringScheme,
                       band: int = 24,
                       identity_query: Optional[np.ndarray] = None
                       ) -> GappedAlignment:
    """Banded affine local alignment around diagonal ``diag = s - q``.

    ``identity_query`` supplies the residue letters for identity
    counting when *query* holds something else — PSI-BLAST passes
    position indices as *query* (so ``scheme.matrix`` is a PSSM) and
    the actual residues here.
    """
    id_query = query if identity_query is None else identity_query
    m = len(query)
    n = len(subject)
    if m == 0 or n == 0:
        return GappedAlignment(0, 0, 0, 0, 0, 0, 0)
    w = 2 * band + 1
    go = scheme.gap_open
    ge = scheme.gap_extend

    H_prev = np.zeros(w, dtype=np.int64)
    F_prev = np.full(w, NEG, dtype=np.int64)

    ptrH = np.zeros((m + 1, w), dtype=np.int8)
    # ptrE / ptrF: 1 if the gap state was *extended* (came from the same
    # gap matrix), 0 if freshly *opened* (came from H).
    ptrE = np.zeros((m + 1, w), dtype=np.int8)
    ptrF = np.zeros((m + 1, w), dtype=np.int8)

    best = 0
    best_pos = (0, 0)
    subject_idx = subject.astype(np.intp)
    band_arange = np.arange(w)

    for i in range(1, m + 1):
        j = i + diag - band + band_arange        # 1-based subject column
        valid = (j >= 1) & (j <= n)
        safe = np.clip(j - 1, 0, n - 1)
        sub = scheme.matrix[query[i - 1], subject_idx[safe]].astype(np.int64)

        diag_score = H_prev + sub

        # F: gap in subject, from row i-1 slot b+1.
        up_H = np.concatenate([H_prev[1:], [NEG]])
        up_F = np.concatenate([F_prev[1:], [NEG]])
        F_open = up_H - go
        F_ext = up_F - ge
        F = np.maximum(F_open, F_ext)
        ptrF[i] = (F_ext > F_open).astype(np.int8)

        # H before E (E needs H within the row, computed left to right).
        H = np.maximum(diag_score, 0)
        codes = np.where(diag_score >= H, _DIAG, _STOP).astype(np.int8)
        take_f = F > H
        H = np.maximum(H, F)
        codes[take_f] = _FROM_F

        E = np.full(w, NEG, dtype=np.int64)
        pe = ptrE[i]
        for b in range(1, w):
            e_open = H[b - 1] - go
            e_ext = E[b - 1] - ge
            E[b] = e_open if e_open >= e_ext else e_ext
            pe[b] = 0 if e_open >= e_ext else 1
            if E[b] > H[b]:
                H[b] = E[b]
                codes[b] = _FROM_E

        H[~valid] = 0
        codes[~valid] = _STOP
        E[~valid] = NEG
        F[~valid] = NEG
        ptrH[i] = codes

        row_best = int(H.max())
        if row_best > best:
            best = row_best
            best_pos = (i, int(np.argmax(H)))

        H_prev = H
        F_prev = F

    if best <= 0:
        return GappedAlignment(0, 0, 0, 0, 0, 0, 0)

    # ------------------------------------------------------------ traceback
    i, b = best_pos
    j = i + diag - band + b
    q_end, s_end = i, j
    identities = 0
    align_len = 0
    ops_rev = []
    state = "H"
    while i > 0 and 0 <= b < w:
        if state == "H":
            code = ptrH[i, b]
            if code == _STOP:
                break
            if code == _DIAG:
                if id_query[i - 1] == subject[j - 1]:
                    identities += 1
                align_len += 1
                ops_rev.append("M")
                i -= 1
                j -= 1
                # same slot
            elif code == _FROM_F:
                state = "F"
            else:
                state = "E"
        elif state == "F":
            # consume one query residue (gap in subject)
            extended = ptrF[i, b]
            align_len += 1
            ops_rev.append("D")
            i -= 1
            b += 1
            state = "F" if extended else "H"
        else:  # state == "E": consume one subject residue (gap in query)
            extended = ptrE[i, b]
            align_len += 1
            ops_rev.append("I")
            j -= 1
            b -= 1
            state = "E" if extended else "H"
    return GappedAlignment(
        q_start=i, q_end=q_end, s_start=j, s_end=s_end,
        score=best, identities=identities, align_len=align_len,
        ops="".join(reversed(ops_rev)),
    )
