"""Banded gapped alignment.

Promising ungapped HSPs are refined with a banded affine-gap local
alignment (Smith–Waterman restricted to a diagonal band around the
HSP's diagonal — the moral equivalent of Gapped BLAST's X-dropoff
gapped extension).  The DP is vectorised across the band for each query
row; exact affine traceback recovers endpoints, alignment length, and
identity count.

DP formulation (Gotoh): for query index i (1..m) and subject index j::

    E(i,j) = best score ending at (i,j) with a gap in the query
             (last move consumes subject only, from (i, j-1))
    F(i,j) = best score ending at (i,j) with a gap in the subject
             (last move consumes query only, from (i-1, j))
    H(i,j) = max(0, H(i-1,j-1) + s(q_i, s_j), E(i,j), F(i,j))

Band slot b holds subject column j = i + diag - band + b, so cell
(i-1, j-1) is slot b of the previous row, (i-1, j) is slot b+1 of the
previous row, and (i, j-1) is slot b-1 of the same row.

The within-row E recurrence ``E[b] = max(H[b-1] - open, E[b-1] - ext)``
is a left-to-right scan, but it closes in one vectorised pass: with
``T[a] = H[a] + ext * a`` and ``P`` its running maximum,
``E[b] = P[b-1] - open - ext*(b-1)`` (each candidate opening point
pays the open penalty once plus ``ext`` per slot travelled).  The
identity requires ``open >= ext`` (otherwise re-opening a gap inside a
gap could beat extending it, which the prefix maximum cannot see), and
the open/extend traceback tie-break matches the scan's only for
``open > ext`` — so the vectorised pass runs exactly when
``gap_open > gap_extend`` (every standard scheme) and the reference
scan loop handles the rest.

Two entry points share the DP:

* :func:`banded_local_align` — one (query, subject, diag), full affine
  traceback with pointer matrices.  Rows whose entire band falls
  outside the subject (a prefix and/or suffix of the row range, since
  the band's column window moves one column per row) are never
  computed: an all-invalid row resets the DP state to exactly the
  initial one (H = 0, F = -inf), so clipping them changes nothing but
  the allocation size.
* :func:`bulk_banded_score` — many candidates at once, **score only**
  (no pointer matrices): the same recurrences stacked candidate-major
  so each DP row is one set of vectorised passes over a
  ``(candidates, band)`` block.  It returns per candidate the best
  score and its end cell, which is all the search driver needs to
  decide which candidates deserve the (much more expensive) traceback
  pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.blast.score import ScoringScheme

NEG = -(10 ** 9)

# Traceback codes for the H matrix.
_STOP, _DIAG, _FROM_F, _FROM_E = 0, 1, 2, 3

_INT64_MIN = np.iinfo(np.int64).min


def _e_scan_loop(H: np.ndarray, codes: np.ndarray, pe: np.ndarray,
                 go: int, ge: int) -> np.ndarray:
    """Reference within-row E scan: left-to-right, updating H in place.

    ``H``/``codes`` are modified in place; returns E.  Kept as the
    fallback for schemes with ``gap_open <= gap_extend`` and as the
    equivalence oracle for the vectorised scan."""
    w = len(H)
    E = np.full(w, NEG, dtype=np.int64)
    for b in range(1, w):
        e_open = H[b - 1] - go
        e_ext = E[b - 1] - ge
        E[b] = e_open if e_open >= e_ext else e_ext
        pe[b] = 0 if e_open >= e_ext else 1
        if E[b] > H[b]:
            H[b] = E[b]
            codes[b] = _FROM_E
    return E


def _e_scan_vectorized(H: np.ndarray, codes: np.ndarray, pe: np.ndarray,
                       go: int, ge: int, slot_ge: np.ndarray,
                       open_cost: np.ndarray, scratch: np.ndarray
                       ) -> np.ndarray:
    """Closed-form E scan (requires ``go > ge``); same contract as
    :func:`_e_scan_loop`.

    ``slot_ge`` is the precomputed ``ge * arange(w)`` vector,
    ``open_cost`` is ``go + slot_ge[:-1]``, and ``scratch`` is a
    reusable ``(w,)`` int64 buffer.  Because ``go > ge``, opening a gap
    from an E-derived H cell can never beat extending that E, so E
    depends only on the pre-E H values — which makes it a prefix
    maximum; the same inequality makes the open/extend tie-break of the
    scan loop reproduce exactly."""
    w = len(H)
    T = H + slot_ge
    P = np.maximum.accumulate(T, out=scratch)
    E = np.empty(w, dtype=np.int64)
    E[0] = NEG
    np.subtract(P[:-1], open_cost, out=E[1:])
    # pe[b] = 1 (extended) iff the best opening point lies before b-1.
    prev_best = np.empty(w - 1, dtype=np.int64)
    prev_best[0] = _INT64_MIN
    prev_best[1:] = P[:-2]
    np.less(T[:-1], prev_best, out=pe[1:].view(bool))
    take_e = E > H
    H[take_e] = E[take_e]
    codes[take_e] = _FROM_E
    return E


@dataclass
class GappedAlignment:
    """Result of a banded gapped extension."""

    q_start: int
    q_end: int     # exclusive
    s_start: int
    s_end: int     # exclusive
    score: int
    identities: int
    align_len: int
    #: Alignment operations, query-start to query-end: "M" aligned pair,
    #: "D" query residue vs gap, "I" gap vs subject residue.
    ops: str = ""

    @property
    def identity(self) -> float:
        return self.identities / self.align_len if self.align_len else 0.0


def banded_local_align(query: np.ndarray, subject: np.ndarray,
                       diag: int, scheme: ScoringScheme,
                       band: int = 24,
                       identity_query: Optional[np.ndarray] = None
                       ) -> GappedAlignment:
    """Banded affine local alignment around diagonal ``diag = s - q``.

    ``identity_query`` supplies the residue letters for identity
    counting when *query* holds something else — PSI-BLAST passes
    position indices as *query* (so ``scheme.matrix`` is a PSSM) and
    the actual residues here.
    """
    id_query = query if identity_query is None else identity_query
    m = len(query)
    n = len(subject)
    if m == 0 or n == 0:
        return GappedAlignment(0, 0, 0, 0, 0, 0, 0)
    w = 2 * band + 1
    go = scheme.gap_open
    ge = scheme.gap_extend

    # Row i's band covers subject columns [i+diag-band, i+diag+band];
    # rows whose window lies entirely outside [1, n] form a prefix
    # and/or suffix of 1..m.  A fully-invalid row is masked to H = 0,
    # F = NEG — exactly the DP's initial state — so the leading ones
    # can be skipped and the trailing ones can never improve the best
    # cell: only rows [row_lo, row_hi] are computed and allocated.
    # Short diagonals near sequence edges stop paying full-length DP.
    row_lo = max(1, 1 - diag - band)
    row_hi = min(m, n - diag + band)
    if row_lo > row_hi:
        return GappedAlignment(0, 0, 0, 0, 0, 0, 0)
    n_rows = row_hi - row_lo + 1

    ptrH = np.zeros((n_rows, w), dtype=np.int8)
    # ptrE / ptrF: 1 if the gap state was *extended* (came from the same
    # gap matrix), 0 if freshly *opened* (came from H).
    ptrE = np.zeros((n_rows, w), dtype=np.int8)
    ptrF = np.zeros((n_rows, w), dtype=np.int8)

    best = 0
    best_pos = (0, 0)
    subject_idx = subject.astype(np.intp)
    band_arange = np.arange(w)
    slot_ge = ge * band_arange
    open_cost = go + slot_ge[:-1]
    vector_scan = go > ge

    # Per-row substitution gathers and validity masks, computed in one
    # shot: row i uses slice i-row_lo of each.
    cols = (np.arange(row_lo, row_hi + 1)[:, None] + (diag - band)
            + band_arange)
    valid_all = (cols >= 1) & (cols <= n)
    row_invalid = ~valid_all.all(axis=1)
    safe_all = np.clip(cols - 1, 0, n - 1)
    sub_all = scheme.matrix[query[row_lo - 1:row_hi][:, None],
                            subject_idx[safe_all]].astype(np.int64)

    # Ping-pong row buffers (allocation per row is measurable at this
    # band width); up_* carry a trailing NEG that never changes.
    bufs = [np.zeros((2, w), dtype=np.int64),
            np.full((2, w), NEG, dtype=np.int64)]
    diag_score = np.empty(w, dtype=np.int64)
    up_H = np.full(w, NEG, dtype=np.int64)
    up_F = np.full(w, NEG, dtype=np.int64)
    F_open = np.empty(w, dtype=np.int64)
    F_ext = np.empty(w, dtype=np.int64)
    scratch = np.empty(w, dtype=np.int64)

    for i in range(row_lo, row_hi + 1):
        r = i - row_lo
        cur = i & 1
        H_prev = bufs[0][1 - cur]
        F_prev = bufs[1][1 - cur]
        H = bufs[0][cur]
        F = bufs[1][cur]

        np.add(H_prev, sub_all[r], out=diag_score)

        # F: gap in subject, from row i-1 slot b+1.
        up_H[:-1] = H_prev[1:]
        up_F[:-1] = F_prev[1:]
        np.subtract(up_H, go, out=F_open)
        np.subtract(up_F, ge, out=F_ext)
        np.maximum(F_open, F_ext, out=F)
        np.greater(F_ext, F_open, out=ptrF[r].view(bool))

        # H before E (E needs H within the row, computed left to right);
        # diag >= max(diag, 0) iff diag >= 0, and _DIAG/_STOP are 1/0.
        codes = ptrH[r]
        np.maximum(diag_score, 0, out=H)
        np.greater_equal(diag_score, 0, out=codes.view(bool))
        take_f = F > H
        np.maximum(H, F, out=H)
        codes[take_f] = _FROM_F

        if vector_scan:
            _e_scan_vectorized(H, codes, ptrE[r], go, ge, slot_ge,
                               open_cost, scratch)
        else:
            _e_scan_loop(H, codes, ptrE[r], go, ge)

        if row_invalid[r]:
            invalid = ~valid_all[r]
            H[invalid] = 0
            codes[invalid] = _STOP
            F[invalid] = NEG

        row_best = int(H.max())
        if row_best > best:
            best = row_best
            best_pos = (i, int(np.argmax(H)))

    if best <= 0:
        return GappedAlignment(0, 0, 0, 0, 0, 0, 0)

    # ------------------------------------------------------------ traceback
    # Pointer rows exist only for [row_lo, row_hi]; rows below row_lo
    # are all-_STOP in the unclipped DP (fully invalid), so stepping
    # under row_lo ends the walk exactly where reading their codes
    # would have.  (The walk cannot *consume* ops below row_lo: F is
    # never selected there — its values derive from H = 0 minus at
    # least a gap-open — and E stays within its row.)
    i, b = best_pos
    j = i + diag - band + b
    q_end, s_end = i, j
    identities = 0
    align_len = 0
    ops_rev = []
    state = "H"
    while i >= row_lo and 0 <= b < w:
        if state == "H":
            code = ptrH[i - row_lo, b]
            if code == _STOP:
                break
            if code == _DIAG:
                if id_query[i - 1] == subject[j - 1]:
                    identities += 1
                align_len += 1
                ops_rev.append("M")
                i -= 1
                j -= 1
                # same slot
            elif code == _FROM_F:
                state = "F"
            else:
                state = "E"
        elif state == "F":
            # consume one query residue (gap in subject)
            extended = ptrF[i - row_lo, b]
            align_len += 1
            ops_rev.append("D")
            i -= 1
            b += 1
            state = "F" if extended else "H"
        else:  # state == "E": consume one subject residue (gap in query)
            extended = ptrE[i - row_lo, b]
            align_len += 1
            ops_rev.append("I")
            j -= 1
            b -= 1
            state = "E" if extended else "H"
    return GappedAlignment(
        q_start=i, q_end=q_end, s_start=j, s_end=s_end,
        score=best, identities=identities, align_len=align_len,
        ops="".join(reversed(ops_rev)),
    )


#: Candidate-chunk bound of the bulk score pass: peak scratch is about
#: ``12 * _BULK_CANDIDATES * (2 * band + 1) * 8`` bytes per DP row.
_BULK_CANDIDATES = 4096


def bulk_banded_score(qcat: np.ndarray, scat: np.ndarray,
                      q_off: np.ndarray, q_len: np.ndarray,
                      s_off: np.ndarray, s_len: np.ndarray,
                      diag: np.ndarray, scheme: ScoringScheme,
                      band: int = 24
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Score-only banded affine DP over many candidates at once.

    Candidate ``c`` is the alignment :func:`banded_local_align` would
    compute for ``(qcat[q_off[c]:q_off[c]+q_len[c]],
    scat[s_off[c]:s_off[c]+s_len[c]], diag[c])`` — queries and subjects
    live as slices of flat concatenations (the scan kernel's fragment
    concatenation and the driver's query concatenation), so one 2-D
    gather per DP row scores candidates belonging to different queries,
    strands and subjects together.  Only ``H``/``F`` row states are
    kept — no pointer matrices, which is the bulk of the scalar
    routine's memory traffic — and the recurrences are evaluated in
    the same order with the same int64 arithmetic, so per candidate
    the returned ``(score, q_end, s_end)`` equals the scalar
    alignment's ``(score, q_end, s_end)`` exactly (``0, 0, 0`` when no
    cell scores positive).

    Candidates are processed longest-first in chunks of
    ``_BULK_CANDIDATES`` so the per-row working set shrinks as shorter
    candidates finish, and each candidate only sweeps the rows whose
    band overlaps its subject (the same clipping as the scalar
    routine).
    """
    n_cand = len(diag)
    out_score = np.zeros(n_cand, dtype=np.int64)
    out_qend = np.zeros(n_cand, dtype=np.int64)
    out_send = np.zeros(n_cand, dtype=np.int64)
    if n_cand == 0:
        return out_score, out_qend, out_send
    q_len = np.asarray(q_len, dtype=np.int64)
    s_len = np.asarray(s_len, dtype=np.int64)
    diag = np.asarray(diag, dtype=np.int64)
    q_off = np.asarray(q_off, dtype=np.int64)
    s_off = np.asarray(s_off, dtype=np.int64)

    w = 2 * band + 1
    go = scheme.gap_open
    ge = scheme.gap_extend
    matrix = scheme.matrix
    barange = np.arange(w, dtype=np.int64)
    slot_ge = ge * barange
    open_cost = go + slot_ge[:-1]
    vector_scan = go > ge

    row_lo = np.maximum(1, 1 - diag - band)
    row_hi = np.minimum(q_len, s_len - diag + band)
    n_rows = np.maximum(0, row_hi - row_lo + 1)
    # Longest-first within each chunk: the active set is then always a
    # prefix, shrinking as candidates run out of rows.
    order = np.argsort(-n_rows, kind="stable")

    for lo in range(0, n_cand, _BULK_CANDIDATES):
        idx = order[lo:lo + _BULK_CANDIDATES]
        nr = n_rows[idx]
        if nr[0] == 0:
            continue
        rl = row_lo[idx]
        qo = q_off[idx]
        so = s_off[idx]
        sl = s_len[idx]
        jbase0 = rl + diag[idx] - band      # subject col at (r=0, b=0)
        c_all = len(idx)
        H = np.zeros((c_all, w), dtype=np.int64)
        F = np.full((c_all, w), NEG, dtype=np.int64)
        best = np.zeros(c_all, dtype=np.int64)
        best_i = np.zeros(c_all, dtype=np.int64)
        best_j = np.zeros(c_all, dtype=np.int64)
        max_rows = int(nr[0])
        neg_nr = -nr
        for r in range(max_rows):
            # Active prefix: candidates with more than r rows.
            a = int(np.searchsorted(neg_nr, -r, side="left"))
            if a == 0:
                break
            i_abs = rl[:a] + r
            jb = jbase0[:a] + r
            j = jb[:, None] + barange
            valid = (j >= 1) & (j <= sl[:a, None])
            sj = so[:a, None] + np.clip(j - 1, 0, (sl[:a] - 1)[:, None])
            sub = matrix[qcat[qo[:a] + i_abs - 1][:, None],
                         scat[sj]].astype(np.int64)
            Hp = H[:a]
            Fp = F[:a]
            diag_score = Hp + sub
            F_new = np.full((a, w), NEG, dtype=np.int64)
            np.maximum(Hp[:, 1:] - go, Fp[:, 1:] - ge, out=F_new[:, :-1])
            H_new = np.maximum(diag_score, 0)
            np.maximum(H_new, F_new, out=H_new)
            if vector_scan:
                # Closed-form within-row E (same identity as the
                # scalar _e_scan_vectorized, rows stacked).
                T = H_new + slot_ge
                P = np.maximum.accumulate(T, axis=1)
                np.maximum(H_new[:, 1:], P[:, :-1] - open_cost,
                           out=H_new[:, 1:])
            else:
                E = np.full(a, NEG, dtype=np.int64)
                for b in range(1, w):
                    np.maximum(H_new[:, b - 1] - go, E - ge, out=E)
                    np.maximum(H_new[:, b], E, out=H_new[:, b])
            H_new[~valid] = 0
            F_new[~valid] = NEG
            row_best = H_new.max(axis=1)
            upd = row_best > best[:a]
            if upd.any():
                slot = np.argmax(H_new, axis=1)
                best[:a][upd] = row_best[upd]
                best_i[:a][upd] = i_abs[upd]
                best_j[:a][upd] = (jb + slot)[upd]
            H[:a] = H_new
            F[:a] = F_new
        pos = best > 0
        out_score[idx[pos]] = best[pos]
        out_qend[idx[pos]] = best_i[pos]
        out_send[idx[pos]] = best_j[pos]
    return out_score, out_qend, out_send
