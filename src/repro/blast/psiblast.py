"""PSI-BLAST: position-specific iterated BLAST (Altschul et al. 1997 —
the paper's reference [9]).

Iteration 1 is an ordinary blastp.  Hits below the inclusion E-value
form a multiple alignment against the query, from which a
position-specific scoring matrix (PSSM) is estimated: per-column
residue frequencies blended with background pseudocounts and converted
to log-odds scores.  Later iterations search with the PSSM, which is
what lets PSI-BLAST pull in homologs too distant for BLOSUM62.

Implementation note: the generic pipeline in :mod:`repro.blast.search`
scores pairs as ``matrix[query_code, subject_code]``; PSI-BLAST reuses
it unchanged by passing ``query = [0, 1, ..., m-1]`` (position indices)
with ``matrix = PSSM`` and supplying the real residues separately for
identity counting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.blast.alphabet import PROTEIN, encode_protein
from repro.blast.score import BLOSUM62, ProteinScore, ScoringScheme
from repro.blast.search import SearchParams, SearchResults, search
from repro.blast.seqdb import AA, SequenceDB
from repro.blast.stats import karlin_altschul_params, _protein_probs

#: Pseudocount weight (NCBI uses ~10 observations' worth).
PSEUDOCOUNT_WEIGHT = 10.0


@dataclass
class PSSM:
    """A position-specific scoring matrix for one query."""

    #: Integer log-odds scores, shape (query length, alphabet size).
    matrix: np.ndarray
    #: The encoded query the matrix was built for.
    query: np.ndarray
    #: Sequences (aligned residues per column) that went into it.
    n_sequences: int

    @property
    def length(self) -> int:
        return self.matrix.shape[0]

    def scheme(self, gap_open: int = 11, gap_extend: int = 1) -> ScoringScheme:
        """A ScoringScheme whose 'query codes' are positions 0..m-1."""
        m = self.matrix.copy()
        m.setflags(write=False)
        return ScoringScheme(m, gap_open, gap_extend, PROTEIN)


@dataclass
class PsiBlastResult:
    """Outcome of an iterated search."""

    iterations: List[SearchResults] = field(default_factory=list)
    pssm: Optional[PSSM] = None
    converged: bool = False

    @property
    def final(self) -> SearchResults:
        return self.iterations[-1]

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)


def _column_observations(query: np.ndarray, db: SequenceDB,
                         results: SearchResults,
                         inclusion_evalue: float
                         ) -> Tuple[np.ndarray, int]:
    """Count aligned residues per (query column, residue) from included
    hits.  Returns (counts matrix, number of included sequences)."""
    m = len(query)
    n_letters = len(PROTEIN)
    counts = np.zeros((m, n_letters), dtype=np.float64)
    included = 0
    for hit in results.hits:
        best = hit.hsps[0] if hit.hsps else None
        if best is None or best.evalue > inclusion_evalue:
            continue
        included += 1
        subject = db.sequence(hit.subject_id)
        for hsp in hit.hsps:
            if hsp.evalue > inclusion_evalue:
                continue
            qi, si = hsp.q_start, hsp.s_start
            ops = hsp.ops or "M" * hsp.align_len
            for op in ops:
                if op == "M":
                    counts[qi, subject[si]] += 1.0
                    qi += 1
                    si += 1
                elif op == "D":
                    qi += 1
                else:
                    si += 1
    return counts, included


def build_pssm(query: np.ndarray, db: SequenceDB, results: SearchResults,
               inclusion_evalue: float = 1e-3) -> PSSM:
    """Estimate a PSSM from the included hits of one search round.

    Per column: observed frequencies blended with background
    pseudocounts, converted to integer log-odds with the BLOSUM62
    ungapped lambda (so PSSM scores live on the same scale as BLOSUM62
    and the usual Karlin–Altschul statistics remain applicable).
    Columns with no aligned observations fall back to the BLOSUM62 row
    of the query residue.
    """
    counts, included = _column_observations(query, db, results,
                                            inclusion_evalue)
    # The query itself always counts as one observation per column.
    for i, aa in enumerate(query):
        counts[i, aa] += 1.0

    probs = _protein_probs()
    lam = karlin_altschul_params(BLOSUM62).lam
    m = len(query)
    pssm = np.zeros((m, len(PROTEIN)), dtype=np.int32)
    for i in range(m):
        n_obs = counts[i].sum()
        freq = counts[i] / n_obs
        alpha = max(n_obs - 1.0, 0.0)
        beta = PSEUDOCOUNT_WEIGHT
        blended = (alpha * freq + beta * probs) / (alpha + beta)
        scores = np.log(np.maximum(blended, 1e-9) / probs) / lam
        pssm[i] = np.rint(scores).astype(np.int32)
    # Fallback for unobserved columns (only the query residue seen and
    # tiny alpha): keep them close to BLOSUM62 behaviour.
    lone = counts.sum(axis=1) <= 1.0
    if lone.any():
        pssm[lone] = BLOSUM62[query[lone]]
    return PSSM(matrix=pssm, query=query.copy(), n_sequences=included)


def _hit_set(results: SearchResults, inclusion_evalue: float) -> Set[int]:
    return {h.subject_id for h in results.hits
            if h.best_evalue <= inclusion_evalue}


def psiblast(query: str, db: SequenceDB, iterations: int = 3,
             inclusion_evalue: float = 1e-3,
             params: Optional[SearchParams] = None,
             query_id: str = "query") -> PsiBlastResult:
    """Iterated position-specific search.

    Stops early when the included hit set stops changing (convergence,
    as NCBI reports it).
    """
    if db.seqtype != AA:
        raise ValueError("psiblast needs a protein database")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    params = params or SearchParams(word_size=3, neighbor_threshold=11,
                                    xdrop_ungapped=16, gapped_trigger=22)
    enc = encode_protein(query)
    scheme = ProteinScore()
    result = PsiBlastResult()

    round1 = search(enc, db, scheme, params, query_id=f"{query_id}|iter1")
    round1.query_id = query_id
    result.iterations.append(round1)
    prev_set = _hit_set(round1, inclusion_evalue)

    positions = np.arange(len(enc), dtype=np.uint8 if len(enc) < 256
                          else np.int64)
    for it in range(2, iterations + 1):
        pssm = build_pssm(enc, db, result.iterations[-1], inclusion_evalue)
        result.pssm = pssm
        res = search(positions, db, pssm.scheme(scheme.gap_open,
                                                scheme.gap_extend),
                     params, query_id=f"{query_id}|iter{it}",
                     identity_query=enc)
        res.query_id = query_id
        result.iterations.append(res)
        cur_set = _hit_set(res, inclusion_evalue)
        if cur_set == prev_set:
            result.converged = True
            break
        prev_set = cur_set
    return result
