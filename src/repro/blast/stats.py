"""Karlin–Altschul statistics.

The significance of an HSP of raw score S between a query of length m
and a database of total length n is::

    E = K * m * n * exp(-lambda * S)

``lambda`` is the unique positive root of  sum_ij p_i p_j e^{lambda s_ij} = 1
and K is computed here with the standard geometric-series approximation
(adequate for ranking and for the paper's workload; NCBI uses a longer
expansion).  For gapped alignments precomputed empirical constants are
used, as NCBI BLAST itself does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class KarlinAltschul:
    """The (lambda, K, H) parameter triple."""

    lam: float
    k: float
    h: float

    def bit_score(self, raw: float) -> float:
        return (self.lam * raw - math.log(self.k)) / math.log(2.0)

    def evalue(self, raw: float, m: int, n: int) -> float:
        return self.k * m * n * math.exp(-self.lam * raw)

    def raw_for_evalue(self, evalue: float, m: int, n: int) -> float:
        """Smallest raw score with E-value <= *evalue*."""
        return math.log(self.k * m * n / evalue) / self.lam


def _solve_lambda(matrix: np.ndarray, probs: np.ndarray) -> float:
    """Bisection for the positive root of sum p_i p_j e^{λ s_ij} = 1."""
    weights = np.outer(probs, probs)
    scores = matrix.astype(np.float64)
    expected = float((weights * scores).sum())
    if expected >= 0:
        raise ValueError("expected score must be negative for Karlin-Altschul")

    def f(lam: float) -> float:
        return float((weights * np.exp(lam * scores)).sum()) - 1.0

    lo, hi = 1e-6, 1e-6
    while f(hi) < 0:
        hi *= 2
        if hi > 100:
            raise ValueError("lambda diverged")
    lo = hi / 2 if f(hi / 2) < 0 else 1e-9
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if f(mid) < 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def _entropy(matrix: np.ndarray, probs: np.ndarray, lam: float) -> float:
    """Relative entropy H of the target distribution."""
    weights = np.outer(probs, probs)
    scores = matrix.astype(np.float64)
    q = weights * np.exp(lam * scores)
    return float(lam * (q * scores).sum())


def _approx_k(matrix: np.ndarray, probs: np.ndarray, lam: float, h: float) -> float:
    """Rough K (one-term approximation): K ≈ H / lambda for integral
    score lattices, damped toward NCBI's tabulated values.

    NCBI computes K from an infinite series over random-walk stopping
    scores; the one-term value is within a small factor, which shifts
    every E-value by that constant factor — harmless for ranking and
    threshold behaviour, and recorded here as an approximation.
    """
    k = h / lam * math.exp(-2.0 * h / lam)
    return max(min(k, 1.0), 1e-4)


_UNIFORM_DNA = np.full(4, 0.25)

#: Robinson & Robinson amino-acid background frequencies over the
#: 25-letter alphabet (rare letters get a tiny floor and the vector is
#: renormalised).
_AA_FREQS_20 = {
    "A": 0.07805, "R": 0.05129, "N": 0.04487, "D": 0.05364, "C": 0.01925,
    "Q": 0.04264, "E": 0.06295, "G": 0.07377, "H": 0.02199, "I": 0.05142,
    "L": 0.09019, "K": 0.05744, "M": 0.02243, "F": 0.03856, "P": 0.05203,
    "S": 0.07120, "T": 0.05841, "W": 0.01330, "Y": 0.03216, "V": 0.06441,
}


def _protein_probs() -> np.ndarray:
    from repro.blast.alphabet import PROTEIN

    probs = np.full(len(PROTEIN), 1e-5)
    for aa, freq in _AA_FREQS_20.items():
        probs[PROTEIN.index(aa)] = freq
    return probs / probs.sum()


#: Empirical gapped constants, as used by NCBI for its default settings.
#: Keys: (description of scheme) -> (lambda, K, H).
GAPPED_CONSTANTS: Dict[str, Tuple[float, float, float]] = {
    # blastn +1/-3, gap 5/2
    "nt:+1/-3:5/2": (1.280, 0.460, 0.85),
    # blastn +1/-2, gap 5/2
    "nt:+1/-2:5/2": (1.190, 0.380, 0.75),
    # blastp BLOSUM62, gap 11/1
    "aa:blosum62:11/1": (0.267, 0.041, 0.14),
}

def length_adjustment(ka: KarlinAltschul, m: int, n: int,
                      n_sequences: int = 1, max_iter: int = 20) -> int:
    """NCBI's edge-effect correction.

    An alignment cannot start within ~l residues of a sequence end, so
    the *effective* search space is (m - l)(n - N*l) with l solving::

        l = ln(K * (m - l) * (n - N*l)) / H

    computed by fixed-point iteration (the scheme NCBI uses).  Returns
    the integer length adjustment l (0 when the correction would make a
    length non-positive).
    """
    if m <= 0 or n <= 0 or n_sequences <= 0:
        return 0
    if ka.h <= 0:
        return 0
    l = 0.0
    for _ in range(max_iter):
        space = (m - l) * (n - n_sequences * l)
        if space <= 1:
            return 0
        l_new = math.log(ka.k * space) / ka.h
        if l_new < 0:
            l_new = 0.0
        if abs(l_new - l) < 0.5:
            l = l_new
            break
        l = l_new
    l_int = int(l)
    if m - l_int <= 0 or n - n_sequences * l_int <= 0:
        return 0
    return l_int


def effective_search_space(ka: KarlinAltschul, m: int, n: int,
                           n_sequences: int = 1) -> Tuple[int, int]:
    """(effective query length, effective database length) after the
    length adjustment."""
    l = length_adjustment(ka, m, n, n_sequences)
    return m - l, max(n - n_sequences * l, 1)


# Keyed by matrix *contents* — an id()-based key aliases when a freed
# matrix's address is recycled, silently returning another matrix's
# parameters.  The matrices are tiny, so hashing the bytes is cheap.
_cache: Dict[tuple, KarlinAltschul] = {}


def karlin_altschul_params(matrix: np.ndarray,
                           probs: Optional[np.ndarray] = None,
                           gapped_key: Optional[str] = None) -> KarlinAltschul:
    """Compute (or look up) Karlin–Altschul parameters for a matrix.

    With *gapped_key* set and present in :data:`GAPPED_CONSTANTS`, the
    tabulated gapped values are returned; otherwise ungapped values are
    computed from the matrix and background *probs*.
    """
    if gapped_key is not None and gapped_key in GAPPED_CONSTANTS:
        lam, k, h = GAPPED_CONSTANTS[gapped_key]
        return KarlinAltschul(lam, k, h)
    key = (matrix.shape, matrix.dtype.str, matrix.tobytes())
    if key in _cache:
        return _cache[key]
    if probs is None:
        n = matrix.shape[0]
        if n == 4:
            probs = _UNIFORM_DNA
        else:
            probs = _protein_probs()
    lam = _solve_lambda(matrix, probs)
    h = _entropy(matrix, probs, lam)
    k = _approx_k(matrix, probs, lam, h)
    params = KarlinAltschul(lam, k, h)
    _cache[key] = params
    return params
