"""Lazy, on-demand database access (the mmap view).

:meth:`repro.blast.seqdb.SequenceDB.load` slurps everything into
memory; real NCBI BLAST instead maps the files and touches pages on
demand — which is precisely the access pattern the paper traces
(Figure 4).  :class:`LazySequenceDB` reproduces that behaviour in the
real engine: the index loads eagerly (it is small and consulted
constantly), while sequence payloads and descriptions are read from
disk on first access and cached.

It duck-types the :class:`~repro.blast.seqdb.SequenceDB` surface the
search pipeline uses (``seqtype``, ``__len__``, ``total_residues``,
``sequence``, ``description``), so ``blastn(query, LazySequenceDB...)``
just works — and its ``io_stats`` expose how many bytes the search
actually pulled.
"""

from __future__ import annotations

import os
import struct
from typing import Dict, Optional

import numpy as np

from repro.blast.alphabet import unpack_2bit
from repro.blast.seqdb import MAGIC, NT, VERSION, SequenceDB


class LazySequenceDB:
    """A database whose sequence data stays on disk until touched."""

    def __init__(self, directory: str, name: str, seqtype: str = NT):
        if seqtype not in (NT, "aa"):
            raise ValueError(f"seqtype must be 'nt' or 'aa', got {seqtype!r}")
        self.seqtype = seqtype
        self.name = name
        self.fragment_id: Optional[int] = None
        helper = SequenceDB(seqtype, name)
        self._idx_path, self._seq_path, self._hdr_path = \
            helper.paths(directory)

        with open(self._idx_path, "rb") as f:
            magic = f.read(4)
            if magic != MAGIC:
                raise ValueError(f"{self._idx_path}: bad magic {magic!r}")
            version, type_code, n = struct.unpack("<IBQ", f.read(13))
            if version != VERSION:
                raise ValueError(f"unsupported version {version}")
            if (type_code == 0) != (seqtype == NT):
                raise ValueError("database type mismatch")
            self._n = int(n)
            self._seq_offsets = np.frombuffer(f.read(8 * (n + 1)), dtype="<u8")
            self._hdr_offsets = np.frombuffer(f.read(8 * (n + 1)), dtype="<u8")
            self._lengths = np.frombuffer(f.read(8 * n), dtype="<u8")

        self._seq_cache: Dict[int, np.ndarray] = {}
        self._hdr_cache: Dict[int, str] = {}
        self.bytes_read = len(MAGIC) + 13 + 8 * (2 * (self._n + 1) + self._n)
        self.sequence_reads = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def n_sequences(self) -> int:
        return self._n

    @property
    def total_residues(self) -> int:
        return int(self._lengths.sum())

    def lengths(self):
        return [int(x) for x in self._lengths]

    # ------------------------------------------------------------------
    def sequence(self, i: int) -> np.ndarray:
        seq = self._seq_cache.get(i)
        if seq is None:
            lo, hi = int(self._seq_offsets[i]), int(self._seq_offsets[i + 1])
            with open(self._seq_path, "rb") as f:
                f.seek(lo)
                blob = f.read(hi - lo)
            self.bytes_read += hi - lo
            self.sequence_reads += 1
            if self.seqtype == NT:
                seq = unpack_2bit(blob, int(self._lengths[i]))
            else:
                seq = np.frombuffer(blob, dtype=np.uint8).copy()
            self._seq_cache[i] = seq
        return seq

    def preload_sequences(self) -> int:
        """Read the whole sequence payload in one pass, caching every
        sequence not already cached; returns how many were newly read.

        This is the bulk entry the scan kernel's
        :func:`~repro.blast.scankernel.build_scan_structures` uses when
        packing a fragment: one contiguous read instead of n seek+read
        round trips — the contiguous-access lesson of the paper's I/O
        path, applied to the compute path.  Per-sequence accounting
        (``bytes_read``, ``sequence_reads``) matches what the same
        reads would have cost one at a time.
        """
        missing = [i for i in range(self._n) if i not in self._seq_cache]
        if not missing:
            return 0
        with open(self._seq_path, "rb") as f:
            data = f.read()
        for i in missing:
            lo, hi = int(self._seq_offsets[i]), int(self._seq_offsets[i + 1])
            blob = data[lo:hi]
            if self.seqtype == NT:
                seq = unpack_2bit(blob, int(self._lengths[i]))
            else:
                seq = np.frombuffer(blob, dtype=np.uint8).copy()
            self._seq_cache[i] = seq
            self.bytes_read += hi - lo
            self.sequence_reads += 1
        return len(missing)

    def subset(self, ids, name: Optional[str] = None,
               fragment_id: Optional[int] = None) -> SequenceDB:
        """Materialize the given sequences into an in-memory
        :class:`~repro.blast.seqdb.SequenceDB` fragment (reads each
        payload through the normal lazy path, so ``io_stats`` account
        for it), remembering parent ids in ``source_ids`` — the same
        surface :meth:`SequenceDB.subset` gives the parallel runtime.
        """
        sub = SequenceDB(self.seqtype,
                         name if name is not None else f"{self.name}.sub",
                         fragment_id=fragment_id)
        for i in ids:
            sub.add(self.description(i), self.sequence(i))
        sub.source_ids = [int(i) for i in ids]
        return sub

    def description(self, i: int) -> str:
        desc = self._hdr_cache.get(i)
        if desc is None:
            lo, hi = int(self._hdr_offsets[i]), int(self._hdr_offsets[i + 1])
            with open(self._hdr_path, "rb") as f:
                f.seek(lo)
                desc = f.read(hi - lo).decode()
            self.bytes_read += hi - lo
            self._hdr_cache[i] = desc
        return desc

    def sequence_str(self, i: int) -> str:
        from repro.blast.alphabet import decode_dna, decode_protein

        dec = decode_dna if self.seqtype == NT else decode_protein
        return dec(self.sequence(i))

    def __iter__(self):
        return ((self.description(i), self.sequence(i))
                for i in range(self._n))

    # ------------------------------------------------------------------
    def io_stats(self) -> Dict[str, int]:
        """Bytes pulled from disk so far and sequence-read count."""
        return {"bytes_read": self.bytes_read,
                "sequence_reads": self.sequence_reads}

    def drop_caches(self) -> None:
        """Forget cached payloads (the next accesses re-read)."""
        self._seq_cache.clear()
        self._hdr_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<LazySequenceDB {self.name!r} {self.seqtype} n={self._n} "
                f"cached={len(self._seq_cache)}>")
