"""Sequence alphabets and numeric encodings.

DNA is encoded 2 bits per base conceptually (A=0, C=1, G=2, T=3) into
``uint8`` arrays; ambiguity codes (N, R, Y, ...) are mapped to A with a
flag available to callers who care.  Protein uses a 25-letter alphabet
(20 standard residues + B Z X U and ``*``) matching the BLOSUM62 table.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

DNA = "ACGT"
#: Protein alphabet in BLOSUM62 row order.
PROTEIN = "ARNDCQEGHILKMFPSTWYVBZX*U"

_DNA_LUT = np.full(256, 255, dtype=np.uint8)
for _i, _c in enumerate(DNA):
    _DNA_LUT[ord(_c)] = _i
    _DNA_LUT[ord(_c.lower())] = _i
# IUPAC ambiguity codes fold to A (matching the common "mask to A"
# preprocessing; BLAST itself scores them as mismatches almost always).
for _c in "NRYSWKMBDHVnryswkmbdhv":
    _DNA_LUT[ord(_c)] = 0

_PROT_LUT = np.full(256, 255, dtype=np.uint8)
for _i, _c in enumerate(PROTEIN):
    _PROT_LUT[ord(_c)] = _i
    _PROT_LUT[ord(_c.lower())] = _i
# Rare letters fold to X.
for _c in "JOjo":
    _PROT_LUT[ord(_c)] = PROTEIN.index("X")

_DNA_COMP = np.array([3, 2, 1, 0], dtype=np.uint8)  # A<->T, C<->G

_DNA_CHARS = np.frombuffer(DNA.encode(), dtype=np.uint8)
_PROT_CHARS = np.frombuffer(PROTEIN.encode(), dtype=np.uint8)


class AlphabetError(ValueError):
    """Raised on characters outside the alphabet."""


def encode_dna(seq: str, strict: bool = False) -> np.ndarray:
    """Encode a DNA string to a uint8 array (A=0 C=1 G=2 T=3).

    With ``strict`` any character outside ACGT+IUPAC raises; otherwise
    unknown characters raise too (they are never silently accepted —
    only recognised ambiguity codes fold to A).
    """
    raw = np.frombuffer(seq.encode("ascii", "strict"), dtype=np.uint8)
    out = _DNA_LUT[raw]
    if (out == 255).any():
        bad = chr(raw[int(np.argmax(out == 255))])
        raise AlphabetError(f"invalid DNA character {bad!r}")
    if strict:
        # Re-check: ambiguity codes are not allowed in strict mode.
        ok = np.isin(raw, np.frombuffer(b"ACGTacgt", dtype=np.uint8))
        if not ok.all():
            bad = chr(raw[int(np.argmax(~ok))])
            raise AlphabetError(f"ambiguous DNA character {bad!r} (strict)")
    return out


def decode_dna(encoded: np.ndarray) -> str:
    """Inverse of :func:`encode_dna` (ambiguity folding is lossy)."""
    return _DNA_CHARS[np.asarray(encoded, dtype=np.uint8)].tobytes().decode()


def encode_protein(seq: str) -> np.ndarray:
    """Encode a protein string to BLOSUM62 row indices."""
    raw = np.frombuffer(seq.encode("ascii", "strict"), dtype=np.uint8)
    out = _PROT_LUT[raw]
    if (out == 255).any():
        bad = chr(raw[int(np.argmax(out == 255))])
        raise AlphabetError(f"invalid protein character {bad!r}")
    return out


def decode_protein(encoded: np.ndarray) -> str:
    """Inverse of :func:`encode_protein` (rare-letter folding is lossy)."""
    return _PROT_CHARS[np.asarray(encoded, dtype=np.uint8)].tobytes().decode()


def reverse_complement(encoded: np.ndarray) -> np.ndarray:
    """Reverse-complement an encoded DNA array."""
    return _DNA_COMP[np.asarray(encoded, dtype=np.uint8)][::-1]


def pack_2bit(encoded: np.ndarray) -> Tuple[bytes, int]:
    """Pack an encoded DNA array 4 bases/byte (big-endian within byte).

    Returns (packed bytes, number of bases).
    """
    enc = np.asarray(encoded, dtype=np.uint8)
    n = len(enc)
    pad = (-n) % 4
    if pad:
        enc = np.concatenate([enc, np.zeros(pad, dtype=np.uint8)])
    quads = enc.reshape(-1, 4)
    packed = (quads[:, 0] << 6) | (quads[:, 1] << 4) | (quads[:, 2] << 2) | quads[:, 3]
    return packed.astype(np.uint8).tobytes(), n


def unpack_2bit(data: bytes, n_bases: int) -> np.ndarray:
    """Inverse of :func:`pack_2bit`."""
    packed = np.frombuffer(data, dtype=np.uint8)
    out = np.empty(len(packed) * 4, dtype=np.uint8)
    out[0::4] = (packed >> 6) & 3
    out[1::4] = (packed >> 4) & 3
    out[2::4] = (packed >> 2) & 3
    out[3::4] = packed & 3
    return out[:n_bases]
