"""Gapped X-drop extension — the actual Gapped BLAST algorithm.

Where :mod:`repro.blast.gapped` uses a fixed diagonal band, NCBI's
ALIGN/ALIGN_EX (Altschul et al. 1997, §3; Zhang et al. 1998) lets the
explored region grow and shrink *adaptively*: a DP cell is abandoned
once its score falls more than X below the best score found so far, so
the live column range per row tracks wherever the alignment is going —
wide around indels, narrow elsewhere.  This finds large shifts a fixed
band misses, while typically touching fewer cells.

Extension runs in two directions from a seed pair; the left half uses
reversed sequences.  Endpoints and score come from the X-drop DP; the
operation path is then recovered with an exact banded pass over the
(now known, small) rectangle.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.blast.gapped import GappedAlignment, banded_local_align
from repro.blast.score import ScoringScheme

NEG = -(10 ** 9)


def _xdrop_half(query: np.ndarray, subject: np.ndarray,
                scheme: ScoringScheme, xdrop: int
                ) -> Tuple[int, int, int]:
    """Extend from (0, 0) forward; global-style (no free restarts).

    Returns (best score, query cells consumed, subject cells consumed)
    for the best-scoring endpoint, where (0,0) scores 0.
    """
    m, n = len(query), len(subject)
    if m == 0 or n == 0:
        return 0, 0, 0
    go, ge = scheme.gap_open, scheme.gap_extend
    best = 0
    best_end = (0, 0)

    # Row i covers subject columns [lo, hi); row 0 is the gap-only row.
    lo, hi = 0, 1
    H_prev = {0: 0}
    E_prev: dict = {}
    F_prev: dict = {}
    # Row 0 rightward gaps while they stay within X.
    j = 1
    s = -go
    while s >= -xdrop and j <= n:
        H_prev[j] = s
        E_prev[j] = s
        j += 1
        s -= ge
    hi = j

    subject_idx = subject.astype(np.intp)
    for i in range(1, m + 1):
        H_cur: dict = {}
        E_cur: dict = {}
        F_cur: dict = {}
        new_lo: Optional[int] = None
        new_hi = lo
        qi = query[i - 1]
        # Columns considered: anything reachable from the previous row's
        # live range (diagonal and down moves) plus rightward gaps.
        j = lo
        max_j = min(hi + 1, n + 1)
        while j < max_j or (j <= n and (j - 1) in H_cur):
            if j > n:
                break
            diag = H_prev.get(j - 1, NEG)
            sub = int(scheme.matrix[qi, subject_idx[j - 1]]) if j >= 1 else NEG
            h = diag + sub if diag > NEG and j >= 1 else NEG
            f = max(H_prev.get(j, NEG) - go, F_prev.get(j, NEG) - ge)
            e = max(H_cur.get(j - 1, NEG) - go, E_cur.get(j - 1, NEG) - ge)
            score = max(h, e, f)
            if score >= best - xdrop and score > NEG // 2:
                H_cur[j] = score
                if e > NEG // 2:
                    E_cur[j] = e
                if f > NEG // 2:
                    F_cur[j] = f
                if new_lo is None:
                    new_lo = j
                new_hi = j + 1
                if score > best:
                    best = score
                    best_end = (i, j)
            j += 1
        if new_lo is None:
            break  # every cell dropped: extension is over
        lo, hi = new_lo, new_hi
        H_prev, E_prev, F_prev = H_cur, E_cur, F_cur

    return best, best_end[0], best_end[1]


def xdrop_gapped_extend(query: np.ndarray, subject: np.ndarray,
                        qseed: int, sseed: int, scheme: ScoringScheme,
                        xdrop: int = 40) -> GappedAlignment:
    """Gapped X-drop extension from the seed pair (qseed, sseed).

    The seed pair itself is scored as part of the right extension.
    """
    m, n = len(query), len(subject)
    if not (0 <= qseed < m and 0 <= sseed < n):
        raise ValueError("seed outside the sequences")

    right_score, r_q, r_s = _xdrop_half(
        query[qseed:], subject[sseed:], scheme, xdrop)
    left_score, l_q, l_s = _xdrop_half(
        query[:qseed][::-1].copy(), subject[:sseed][::-1].copy(),
        scheme, xdrop)

    score = left_score + right_score
    if score <= 0:
        return GappedAlignment(0, 0, 0, 0, 0, 0, 0)
    q0, q1 = qseed - l_q, qseed + r_q
    s0, s1 = sseed - l_s, sseed + r_s

    # Recover the path exactly over the (small) found rectangle.
    sub_q = query[q0:q1]
    sub_s = subject[s0:s1]
    band = max(abs(len(sub_s) - len(sub_q)) + 8, 16)
    aln = banded_local_align(sub_q, sub_s, diag=0, scheme=scheme, band=band)
    return GappedAlignment(
        q_start=q0 + aln.q_start, q_end=q0 + aln.q_end,
        s_start=s0 + aln.s_start, s_end=s0 + aln.s_end,
        score=aln.score, identities=aln.identities,
        align_len=aln.align_len, ops=aln.ops,
    )
