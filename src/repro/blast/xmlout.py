"""BLAST XML output (the NCBI BlastOutput DTD, abridged).

Era pipelines parsed ``blastall -m 7`` XML; this writer emits the same
element structure for :class:`~repro.blast.search.SearchResults` so
such parsers (BioPython's ``NCBIXML`` among them) have something
familiar to chew on.
"""

from __future__ import annotations

from typing import Optional
from xml.sax.saxutils import escape

from repro.blast.search import SearchResults


def to_xml(results: SearchResults, program: str = "blastn",
           database: str = "db") -> str:
    """Render results as BlastOutput-style XML."""
    results.sort()
    lines = [
        '<?xml version="1.0"?>',
        "<BlastOutput>",
        f"  <BlastOutput_program>{escape(program)}</BlastOutput_program>",
        f"  <BlastOutput_db>{escape(database)}</BlastOutput_db>",
        f"  <BlastOutput_query-ID>{escape(results.query_id)}</BlastOutput_query-ID>",
        f"  <BlastOutput_query-len>{results.query_len}</BlastOutput_query-len>",
        "  <BlastOutput_iterations>",
        "    <Iteration>",
        "      <Iteration_iter-num>1</Iteration_iter-num>",
        "      <Iteration_hits>",
    ]
    for num, hit in enumerate(results.hits, 1):
        lines += [
            "        <Hit>",
            f"          <Hit_num>{num}</Hit_num>",
            f"          <Hit_id>{escape(hit.description.split()[0] if hit.description else str(hit.subject_id))}</Hit_id>",
            f"          <Hit_def>{escape(hit.description)}</Hit_def>",
            f"          <Hit_len>{hit.subject_len}</Hit_len>",
            "          <Hit_hsps>",
        ]
        for hnum, h in enumerate(hit.hsps, 1):
            # NCBI coordinates are 1-based inclusive; minus-strand
            # nucleotide HSPs swap the query from/to.
            q_from, q_to = h.q_start + 1, h.q_end
            if h.strand == -1:
                q_from, q_to = results.query_len - h.q_start, \
                    results.query_len - h.q_end + 1
            gaps = h.ops.count("D") + h.ops.count("I") if h.ops else 0
            lines += [
                "            <Hsp>",
                f"              <Hsp_num>{hnum}</Hsp_num>",
                f"              <Hsp_bit-score>{h.bit_score:.6g}</Hsp_bit-score>",
                f"              <Hsp_score>{h.score}</Hsp_score>",
                f"              <Hsp_evalue>{h.evalue:.6g}</Hsp_evalue>",
                f"              <Hsp_query-from>{q_from}</Hsp_query-from>",
                f"              <Hsp_query-to>{q_to}</Hsp_query-to>",
                f"              <Hsp_hit-from>{h.s_start + 1}</Hsp_hit-from>",
                f"              <Hsp_hit-to>{h.s_end}</Hsp_hit-to>",
                f"              <Hsp_identity>{h.identities}</Hsp_identity>",
                f"              <Hsp_gaps>{gaps}</Hsp_gaps>",
                f"              <Hsp_align-len>{h.align_len}</Hsp_align-len>",
                "            </Hsp>",
            ]
        lines += [
            "          </Hit_hsps>",
            "        </Hit>",
        ]
    lines += [
        "      </Iteration_hits>",
        "      <Iteration_stat>",
        f"        <Statistics_db-num>{results.db_sequences}</Statistics_db-num>",
        f"        <Statistics_db-len>{results.db_residues}</Statistics_db-len>",
        "      </Iteration_stat>",
        "    </Iteration>",
        "  </BlastOutput_iterations>",
        "</BlastOutput>",
    ]
    return "\n".join(lines) + "\n"
