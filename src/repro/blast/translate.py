"""Codon translation and six-frame translation (for blastx/tblastn/tblastx)."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.blast.alphabet import PROTEIN, encode_protein, reverse_complement

# Standard genetic code indexed by 16*b0 + 4*b1 + b2 with A=0 C=1 G=2 T=3.
_CODON_TABLE_STR = (
    "KNKN" "TTTT" "RSRS" "IIMI"   # AAx ACx AGx ATx
    "QHQH" "PPPP" "RRRR" "LLLL"   # CAx CCx CGx CTx
    "EDED" "AAAA" "GGGG" "VVVV"   # GAx GCx GGx GTx
    "*Y*Y" "SSSS" "*CWC" "LFLF"   # TAx TCx TGx TTx
)
assert len(_CODON_TABLE_STR) == 64

_CODON_LUT = encode_protein(_CODON_TABLE_STR)


def translate(dna: np.ndarray, frame: int = 0) -> np.ndarray:
    """Translate an encoded DNA array starting at ``frame`` (0, 1, 2).

    Returns encoded protein (stop codons become ``*``).
    """
    if frame not in (0, 1, 2):
        raise ValueError("frame must be 0, 1 or 2")
    d = np.asarray(dna, dtype=np.int64)[frame:]
    n_codons = len(d) // 3
    if n_codons == 0:
        return np.empty(0, dtype=np.uint8)
    d = d[:n_codons * 3].reshape(-1, 3)
    idx = d[:, 0] * 16 + d[:, 1] * 4 + d[:, 2]
    return _CODON_LUT[idx]


def six_frames(dna: np.ndarray) -> List[Tuple[int, np.ndarray]]:
    """All six translation frames.

    Returns [(frame, protein)], frame in {1,2,3,-1,-2,-3} with NCBI
    conventions (negative frames translate the reverse complement).
    """
    out: List[Tuple[int, np.ndarray]] = []
    rc = reverse_complement(dna)
    for f in (0, 1, 2):
        out.append((f + 1, translate(dna, f)))
    for f in (0, 1, 2):
        out.append((-(f + 1), translate(rc, f)))
    return out


def protein_to_dna_coords(p_start: int, p_end: int, frame: int,
                          dna_len: int) -> Tuple[int, int]:
    """Map a protein-coordinate range back to DNA coordinates.

    ``p_start``/``p_end`` are 0-based, end-exclusive protein positions in
    the given frame's translation.  Returns 0-based, end-exclusive DNA
    coordinates on the forward strand.
    """
    if frame > 0:
        off = frame - 1
        return off + 3 * p_start, off + 3 * p_end
    off = -frame - 1
    # positions counted from the reverse-complement start
    rc_start, rc_end = off + 3 * p_start, off + 3 * p_end
    return dna_len - rc_end, dna_len - rc_start
