"""NCBI-style pairwise alignment rendering.

Turns an :class:`~repro.blast.search.HSP` (with its ``ops`` string)
into the classic three-line blocks::

    Query  1    ACGTACGT-ACGTT  13
                |||| ||| ||| |
    Sbjct  101  ACGTTCGTAACGAT  114

Minus-strand nucleotide HSPs are rendered against the reverse
complement of the query (coordinates shown in plus-strand space, as
NCBI does).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.blast.alphabet import decode_dna, decode_protein, encode_dna, \
    encode_protein, reverse_complement
from repro.blast.search import HSP, Hit, SearchResults
from repro.blast.seqdb import AA, NT, SequenceDB


def _aligned_strings(query: str, subject: str, hsp: HSP):
    """Build the query/match/subject strings from the ops path."""
    ops = hsp.ops or "M" * hsp.align_len
    qi, si = hsp.q_start, hsp.s_start
    q_line: List[str] = []
    m_line: List[str] = []
    s_line: List[str] = []
    for op in ops:
        if op == "M":
            qc, sc = query[qi], subject[si]
            q_line.append(qc)
            s_line.append(sc)
            m_line.append("|" if qc == sc else " ")
            qi += 1
            si += 1
        elif op == "D":          # query residue vs gap
            q_line.append(query[qi])
            s_line.append("-")
            m_line.append(" ")
            qi += 1
        elif op == "I":          # gap vs subject residue
            q_line.append("-")
            s_line.append(subject[si])
            m_line.append(" ")
            si += 1
        else:
            raise ValueError(f"unknown op {op!r}")
    if qi != hsp.q_end or si != hsp.s_end:
        raise ValueError("ops do not span the HSP coordinates")
    return "".join(q_line), "".join(m_line), "".join(s_line)


def render_hsp(query: str, subject: str, hsp: HSP, width: int = 60,
               minus_query_len: int = 0) -> str:
    """Render one HSP as wrapped three-line blocks.

    *query* and *subject* must be in the orientation the HSP was found
    in (pass the reverse-complemented query for strand -1 and set
    ``minus_query_len`` to the full query length so coordinates can be
    mapped back to plus-strand space).
    """
    q_str, m_str, s_str = _aligned_strings(query, subject, hsp)
    header = (f" Score = {hsp.bit_score:.1f} bits ({hsp.score}), "
              f"Expect = {hsp.evalue:.2g}\n"
              f" Identities = {hsp.identities}/{hsp.align_len} "
              f"({100 * hsp.identity:.0f}%)"
              + (f", Strand = Plus / Minus" if hsp.strand == -1 else ""))
    lines = [header, ""]
    qpos, spos = hsp.q_start, hsp.s_start
    for off in range(0, len(q_str), width):
        qchunk = q_str[off:off + width]
        mchunk = m_str[off:off + width]
        schunk = s_str[off:off + width]
        q_consumed = len(qchunk) - qchunk.count("-")
        s_consumed = len(schunk) - schunk.count("-")
        if hsp.strand == -1 and minus_query_len:
            # Map RC coordinates to plus-strand, 1-based inclusive.
            disp_q0 = minus_query_len - qpos
            disp_q1 = minus_query_len - (qpos + q_consumed) + 1
        else:
            disp_q0 = qpos + 1
            disp_q1 = qpos + q_consumed
        lines.append(f"Query  {disp_q0:<6d} {qchunk}  {disp_q1}")
        lines.append(f"       {'':<6s} {mchunk}")
        lines.append(f"Sbjct  {spos + 1:<6d} {schunk}  {spos + s_consumed}")
        lines.append("")
        qpos += q_consumed
        spos += s_consumed
    return "\n".join(lines).rstrip()


def render_results(query: str, db: SequenceDB, results: SearchResults,
                   max_hits: int = 10, max_hsps: int = 3,
                   width: int = 60) -> str:
    """Full report: the summary table plus rendered alignments.

    Works for blastn and blastp results (translated programs report
    against translated subjects, which are not rendered here).
    """
    results.sort()
    out = [results.report(max_hits=max_hits), ""]
    is_nt = db.seqtype == NT
    if is_nt:
        q_plus = query.upper()
        q_minus = decode_dna(reverse_complement(encode_dna(query)))
    for hit in results.hits[:max_hits]:
        subject = db.sequence_str(hit.subject_id)
        out.append(f">{hit.description}")
        out.append(f"Length = {hit.subject_len}")
        out.append("")
        for hsp in hit.hsps[:max_hsps]:
            if is_nt and hsp.strand == -1:
                out.append(render_hsp(q_minus, subject, hsp, width,
                                      minus_query_len=len(query)))
            elif abs(hsp.strand) == 1:
                out.append(render_hsp(query.upper(), subject, hsp, width))
            else:
                out.append(f" [frame {hsp.strand:+d} alignment: "
                           f"score {hsp.score}, E = {hsp.evalue:.2g}]")
            out.append("")
    return "\n".join(out).rstrip() + "\n"
