"""Lightweight per-stage profiling for the search drivers.

``REPRO_PROFILE=1`` (or the CLI's ``--profile``) makes every top-level
:func:`repro.blast.search.search` / ``search_batch`` call emit one JSON
line to stderr with per-stage wall times — pack, index, scan, seed,
extend, gapped_bulk (the batched score-only gapped pass), gapped (the
pointer-matrix tracebacks) — plus counters like how many seeds the
covered-run prefilter dropped.  The gapped stage threads three
counters: ``gapped_trials`` (score-pass DP problems — every triggered
candidate on the scalar path, distinct diagonals on the bulk path),
``gapped_traceback`` (pointer-matrix DPs actually run), and
``gapped_culled`` (triggered candidates resolved without a
pointer-matrix DP: diagonal-memo hits, E-value-reject skips,
``max_gapped_per_subject`` drops, zero-score results).  The point is
to stop guessing where the numpy passes go: kernel PRs read the stage
split instead of re-deriving it with ad-hoc timers.

The hook is designed to cost nothing when off: the drivers consult
:func:`current_profile` (a module-global read) and skip every timer
when it returns ``None``.  Only the *outermost* search activates a
profile — nested calls (e.g. the loop-engine fallback inside a batched
driver) accumulate into the active one rather than emitting their own
lines.
"""

from __future__ import annotations

import json
import os
import sys
import time
from contextlib import contextmanager
from typing import Dict, Optional

#: Environment switch; any non-empty value other than ``0`` enables
#: profiling (the CLI's ``--profile`` just sets it to ``1``).
PROFILE_ENV = "REPRO_PROFILE"

_active: Optional["StageProfile"] = None


def profiling_enabled() -> bool:
    """Whether the environment asks for per-stage emission."""
    return (os.environ.get(PROFILE_ENV) or "").strip() not in ("", "0")


def current_profile() -> Optional["StageProfile"]:
    """The profile of the enclosing search call, or ``None`` (the
    common, zero-overhead case)."""
    return _active


class StageProfile:
    """Accumulates stage wall times and counters for one search call."""

    def __init__(self, label: str, **meta):
        self.label = label
        self.meta = dict(meta)
        self.stages: Dict[str, float] = {}
        self.counters: Dict[str, int] = {}
        self._t0 = time.perf_counter()

    def add(self, stage: str, seconds: float) -> None:
        """Accumulate *seconds* into a stage bucket."""
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    def count(self, name: str, n: int = 1) -> None:
        """Bump a counter (seeds seen, seeds skipped, subjects hit...)."""
        self.counters[name] = self.counters.get(name, 0) + n

    @contextmanager
    def stage(self, name: str):
        """Time a block into the *name* bucket."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def as_dict(self) -> dict:
        out = {"profile": self.label,
               "total_s": round(time.perf_counter() - self._t0, 6)}
        out.update(self.meta)
        out["stages"] = {k: round(v, 6) for k, v in self.stages.items()}
        if self.counters:
            out["counters"] = dict(self.counters)
        return out

    def emit(self, stream=None) -> None:
        """One JSON line to stderr (never stdout — results live there)."""
        print(json.dumps(self.as_dict()),
              file=stream if stream is not None else sys.stderr)


@contextmanager
def profiled(label: str, enabled: Optional[bool] = None,
             emit: bool = True, **meta):
    """Activate a :class:`StageProfile` for the dynamic extent.

    Yields the active profile (or ``None`` when profiling is off).  A
    profile already being active means this call is nested inside
    another profiled search: the outer one keeps collecting and no new
    line is emitted.  ``emit=False`` collects stage times without
    printing the JSON line — benchmarks use it to read stage splits
    programmatically from the yielded profile.
    """
    global _active
    if enabled is None:
        enabled = profiling_enabled()
    if not enabled or _active is not None:
        yield _active
        return
    prof = StageProfile(label, **meta)
    _active = prof
    try:
        yield prof
    finally:
        _active = None
        if emit:
            prof.emit()
