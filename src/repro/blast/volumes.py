"""Multi-volume databases and alias files.

NCBI ships large databases (nt included) as numbered *volumes*
(``nt.00``, ``nt.01``, ...) capped at a maximum file size, tied
together by an alias file (``nt.nal``) listing the member volumes.
Search tools open the alias and iterate the volumes transparently.

This module reproduces that mechanism on top of
:class:`repro.blast.seqdb.SequenceDB`: :func:`split_volumes` cuts a
database into size-capped volumes preserving sequence order,
:func:`write_volumes` persists them plus the alias file, and
:func:`search_volumes` runs any program over all volumes and merges —
the same merge the parallel master uses.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.blast.search import SearchParams, SearchResults
from repro.blast.seqdb import NT, SequenceDB

#: Default volume cap (NCBI used ~1 GB volumes in the era).
DEFAULT_VOLUME_BYTES = 1_000_000_000


@dataclass(frozen=True)
class AliasFile:
    """Parsed ``.nal``/``.pal`` alias file."""

    title: str
    volumes: List[str]

    def render(self) -> str:
        return (f"TITLE {self.title}\n"
                f"DBLIST {' '.join(self.volumes)}\n")

    @classmethod
    def parse(cls, text: str) -> "AliasFile":
        title = ""
        volumes: List[str] = []
        for line in text.splitlines():
            line = line.strip()
            if line.startswith("TITLE"):
                title = line[5:].strip()
            elif line.startswith("DBLIST"):
                volumes = line[6:].split()
        if not volumes:
            raise ValueError("alias file lists no volumes")
        return cls(title, volumes)


def _sequence_disk_bytes(db: SequenceDB, i: int) -> int:
    """On-disk bytes one sequence contributes (packed data + header)."""
    seq_len = len(db.sequence(i))
    data = (seq_len + 3) // 4 if db.seqtype == NT else seq_len
    return data + len(db.description(i).encode()) + 24  # + index entry


def split_volumes(db: SequenceDB,
                  max_bytes: int = DEFAULT_VOLUME_BYTES) -> List[SequenceDB]:
    """Cut *db* into volumes of at most ``max_bytes`` on-disk bytes,
    preserving sequence order (unlike fragment balancing, volumes are a
    storage artifact and keep the original layout)."""
    if max_bytes < 1:
        raise ValueError("max_bytes must be >= 1")
    volumes: List[SequenceDB] = []
    current: Optional[SequenceDB] = None
    current_bytes = 0
    for i in range(len(db)):
        nbytes = _sequence_disk_bytes(db, i)
        if current is None or (current_bytes + nbytes > max_bytes
                               and len(current) > 0):
            current = SequenceDB(db.seqtype, f"{db.name}.{len(volumes):02d}")
            volumes.append(current)
            current_bytes = 0
        current.add(db.description(i), db.sequence(i))
        current_bytes += nbytes
    return volumes or [SequenceDB(db.seqtype, f"{db.name}.00")]


def write_volumes(db: SequenceDB, directory: str,
                  max_bytes: int = DEFAULT_VOLUME_BYTES) -> str:
    """Write volumes plus the alias file; returns the alias path."""
    volumes = split_volumes(db, max_bytes)
    for vol in volumes:
        vol.write(directory)
    ext = "nal" if db.seqtype == NT else "pal"
    alias = AliasFile(title=db.name, volumes=[v.name for v in volumes])
    path = os.path.join(directory, f"{db.name}.{ext}")
    with open(path, "w") as f:
        f.write(alias.render())
    return path


def load_volumes(directory: str, name: str,
                 seqtype: str = NT) -> List[SequenceDB]:
    """Load every volume listed by the alias file."""
    ext = "nal" if seqtype == NT else "pal"
    with open(os.path.join(directory, f"{name}.{ext}")) as f:
        alias = AliasFile.parse(f.read())
    return [SequenceDB.load(directory, vol, seqtype)
            for vol in alias.volumes]


def search_volumes(program: Callable[..., SearchResults], query: str,
                   volumes: List[SequenceDB],
                   params: Optional[SearchParams] = None,
                   query_id: str = "query") -> SearchResults:
    """Run *program* over every volume and merge (E-values rescaled to
    the combined database size)."""
    if not volumes:
        raise ValueError("no volumes to search")
    merged: Optional[SearchResults] = None
    for vol in volumes:
        res = program(query, vol, params=params, query_id=query_id)
        merged = res if merged is None else merged.merge(res)
    return merged
