"""Full (unbanded) Smith-Waterman-Gotoh local alignment.

The exact algorithm BLAST approximates.  O(m*n) time and memory — far
too slow for database search, which is the whole reason BLAST exists —
but invaluable as a gold standard: the banded extension's score can
never exceed it, and must equal it whenever the optimal path stays
inside the band (property-tested in ``tests/test_blast_sw.py``).

Row-vectorised with NumPy; fine up to a few thousand residues a side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.blast.score import ScoringScheme

NEG = -(10 ** 9)


@dataclass(frozen=True)
class SWAlignment:
    """Optimal local alignment."""

    q_start: int
    q_end: int     # exclusive
    s_start: int
    s_end: int     # exclusive
    score: int
    ops: str       # M / D (query vs gap) / I (gap vs subject)

    @property
    def align_len(self) -> int:
        return len(self.ops)


def smith_waterman_score(query: np.ndarray, subject: np.ndarray,
                         scheme: ScoringScheme) -> int:
    """Optimal local alignment score only (no traceback, low memory)."""
    m, n = len(query), len(subject)
    if m == 0 or n == 0:
        return 0
    go, ge = scheme.gap_open, scheme.gap_extend
    H_prev = np.zeros(n + 1, dtype=np.int64)
    F_prev = np.full(n + 1, NEG, dtype=np.int64)
    best = 0
    subject_idx = subject.astype(np.intp)
    for i in range(1, m + 1):
        sub = scheme.matrix[query[i - 1], subject_idx].astype(np.int64)
        diag = H_prev[:-1] + sub
        F = np.maximum(H_prev[1:] - go, F_prev[1:] - ge)
        H = np.maximum(diag, F)
        np.maximum(H, 0, out=H)
        # E needs a sequential scan within the row.
        E = NEG
        Hrow = np.empty(n + 1, dtype=np.int64)
        Hrow[0] = 0
        for j in range(1, n + 1):
            E = max(Hrow[j - 1] - go, E - ge)
            h = H[j - 1]
            if E > h:
                h = E
            Hrow[j] = h
        best = max(best, int(Hrow.max()))
        F_prev = np.concatenate([[NEG], F])
        H_prev = Hrow
    return best


def smith_waterman(query: np.ndarray, subject: np.ndarray,
                   scheme: ScoringScheme) -> SWAlignment:
    """Optimal local alignment with full traceback."""
    m, n = len(query), len(subject)
    if m == 0 or n == 0:
        return SWAlignment(0, 0, 0, 0, 0, "")
    go, ge = scheme.gap_open, scheme.gap_extend

    H = np.zeros((m + 1, n + 1), dtype=np.int64)
    E = np.full((m + 1, n + 1), NEG, dtype=np.int64)
    F = np.full((m + 1, n + 1), NEG, dtype=np.int64)
    subject_idx = subject.astype(np.intp)

    for i in range(1, m + 1):
        sub = scheme.matrix[query[i - 1], subject_idx].astype(np.int64)
        F[i, 1:] = np.maximum(H[i - 1, 1:] - go, F[i - 1, 1:] - ge)
        diag = H[i - 1, :-1] + sub
        base = np.maximum(np.maximum(diag, F[i, 1:]), 0)
        # Sequential E within the row.
        e = NEG
        row = H[i]
        for j in range(1, n + 1):
            e = max(row[j - 1] - go, e - ge)
            E[i, j] = e
            h = base[j - 1]
            if e > h:
                h = e
            row[j] = h

    best = int(H.max())
    if best <= 0:
        return SWAlignment(0, 0, 0, 0, 0, "")
    i, j = np.unravel_index(int(np.argmax(H)), H.shape)
    i, j = int(i), int(j)
    q_end, s_end = i, j
    ops = []
    state = "H"
    while i > 0 and j > 0:
        if state == "H":
            h = H[i, j]
            if h == 0:
                break
            sub = int(scheme.matrix[query[i - 1], subject[j - 1]])
            if h == H[i - 1, j - 1] + sub:
                ops.append("M")
                i -= 1
                j -= 1
            elif h == F[i, j]:
                state = "F"
            elif h == E[i, j]:
                state = "E"
            else:  # pragma: no cover - DP consistency
                raise AssertionError("traceback inconsistency")
        elif state == "F":
            ops.append("D")
            came_ext = F[i, j] == F[i - 1, j] - ge
            came_open = F[i, j] == H[i - 1, j] - go
            i -= 1
            state = "F" if (came_ext and not came_open) else "H"
        else:  # E
            ops.append("I")
            came_ext = E[i, j] == E[i, j - 1] - ge
            came_open = E[i, j] == H[i, j - 1] - go
            j -= 1
            state = "E" if (came_ext and not came_open) else "H"
    return SWAlignment(q_start=i, q_end=q_end, s_start=j, s_end=s_end,
                       score=best, ops="".join(reversed(ops)))
