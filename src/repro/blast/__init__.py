"""A real BLAST-family sequence-search engine.

This subpackage is *not* simulated: it parses FASTA, formats databases,
builds word indexes, seeds, extends (ungapped X-drop and banded gapped),
and scores alignments with Karlin–Altschul statistics — the same
pipeline structure as NCBI BLAST (Altschul et al. 1990, 1997).  All five
classic programs are provided: blastn, blastp, blastx, tblastn, tblastx.

Quick example::

    from repro.blast import SequenceDB, blastn

    db = SequenceDB.from_fasta_text(\"\"\"
    >seq1
    ACGTACGTACGTACGTACGTACGTACGT
    \"\"\")
    results = blastn("ACGTACGTACGTACGT", db)
    print(results.best().evalue)
"""

from repro.blast.alphabet import (
    DNA,
    PROTEIN,
    decode_dna,
    decode_protein,
    encode_dna,
    encode_protein,
    reverse_complement,
)
from repro.blast.fasta import FastaRecord, parse_fasta, write_fasta
from repro.blast.score import (
    BLOSUM62,
    NucleotideScore,
    ProteinScore,
    ScoringScheme,
)
from repro.blast.stats import KarlinAltschul, karlin_altschul_params
from repro.blast.seqdb import SequenceDB, format_db, segment_db
from repro.blast.gapped import banded_local_align, bulk_banded_score
from repro.blast.search import Hit, HSP, SearchParams, SearchResults, search
from repro.blast.programs import blastall, blastn, blastp, blastx, tblastn, tblastx
from repro.blast.psiblast import PSSM, PsiBlastResult, build_pssm, psiblast
from repro.blast.queryseg import search_segmented, segment_query
from repro.blast.render import render_hsp, render_results
from repro.blast.filter import dust_mask, seg_mask
from repro.blast.greedy import GreedyExtension, greedy_extend, megablast
from repro.blast.lazydb import LazySequenceDB
from repro.blast.scankernel import (ScanCache, ScanStructures,
                                    build_scan_structures,
                                    default_scan_cache, scan_fragment)
from repro.blast.sw import SWAlignment, smith_waterman, smith_waterman_score
from repro.blast.xdrop import xdrop_gapped_extend
from repro.blast.translate import translate, six_frames
from repro.blast.volumes import (load_volumes, search_volumes,
                                 split_volumes, write_volumes)
from repro.blast.xmlout import to_xml

__all__ = [
    "BLOSUM62",
    "PSSM",
    "PsiBlastResult",
    "blastall",
    "build_pssm",
    "dust_mask",
    "psiblast",
    "render_hsp",
    "render_results",
    "GreedyExtension",
    "LazySequenceDB",
    "SWAlignment",
    "ScanCache",
    "ScanStructures",
    "build_scan_structures",
    "default_scan_cache",
    "scan_fragment",
    "greedy_extend",
    "megablast",
    "load_volumes",
    "search_segmented",
    "search_volumes",
    "seg_mask",
    "segment_query",
    "smith_waterman",
    "smith_waterman_score",
    "split_volumes",
    "to_xml",
    "xdrop_gapped_extend",
    "write_volumes",
    "DNA",
    "FastaRecord",
    "HSP",
    "Hit",
    "KarlinAltschul",
    "NucleotideScore",
    "PROTEIN",
    "ProteinScore",
    "ScoringScheme",
    "SearchParams",
    "SearchResults",
    "SequenceDB",
    "banded_local_align",
    "blastn",
    "bulk_banded_score",
    "blastp",
    "blastx",
    "decode_dna",
    "decode_protein",
    "encode_dna",
    "encode_protein",
    "format_db",
    "karlin_altschul_params",
    "parse_fasta",
    "reverse_complement",
    "search",
    "segment_db",
    "six_frames",
    "tblastn",
    "tblastx",
    "translate",
    "write_fasta",
]
