"""Query segmentation — the *other* way to parallelise BLAST.

Section 2.2 of the paper describes two parallelisation approaches:
database segmentation (what mpiBLAST and this repo's
:mod:`repro.parallel` do) and **query segmentation**, where every
worker holds the whole database and searches one piece of the query.
The paper dismisses the latter for large databases ("the first approach
becomes less attractive due to large I/O overhead" — each worker must
read/hold the entire database); the simulator quantifies that in
``benchmarks/bench_ext_queryseg.py``.

This module provides the real-engine half: splitting a query into
overlapping pieces, searching each, and merging results with
coordinates mapped back to the full query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.blast.search import SearchParams, SearchResults
from repro.blast.seqdb import SequenceDB


@dataclass(frozen=True)
class QuerySegment:
    """One piece of a segmented query."""

    index: int
    start: int      # offset of the piece in the full query
    text: str


def segment_query(query: str, n_segments: int, overlap: int = 50
                  ) -> List[QuerySegment]:
    """Split *query* into *n_segments* pieces with *overlap* shared
    characters between neighbours (so alignments spanning a boundary are
    found by at least one piece, as long as they are shorter than the
    overlap).
    """
    if n_segments < 1:
        raise ValueError("n_segments must be >= 1")
    if overlap < 0:
        raise ValueError("overlap must be >= 0")
    n = len(query)
    if n_segments > n:
        n_segments = max(1, n)
    base = n // n_segments
    segments: List[QuerySegment] = []
    for i in range(n_segments):
        start = i * base
        end = n if i == n_segments - 1 else (i + 1) * base + overlap
        end = min(end, n)
        segments.append(QuerySegment(i, start, query[start:end]))
    return segments


def merge_segment_results(full_query_len: int,
                          pieces: Sequence[Tuple[QuerySegment, SearchResults]]
                          ) -> SearchResults:
    """Combine per-segment results into full-query results.

    Query coordinates are shifted back to the full query; E-values are
    rescaled to the full query length (E scales linearly in m); HSPs
    found by two overlapping segments are deduplicated by subject span.
    """
    if not pieces:
        raise ValueError("no results to merge")
    first = pieces[0][1]
    merged = SearchResults(
        query_id=first.query_id.split("|seg")[0],
        query_len=full_query_len,
        db_residues=first.db_residues,
        db_sequences=first.db_sequences,
    )
    by_subject: dict = {}
    for segment, results in pieces:
        scale = full_query_len / max(results.query_len, 1)
        for hit in results.hits:
            tgt = by_subject.get(hit.subject_id)
            if tgt is None:
                tgt = type(hit)(subject_id=hit.subject_id,
                                description=hit.description,
                                subject_len=hit.subject_len,
                                hsps=[], fragment_id=hit.fragment_id)
                by_subject[hit.subject_id] = tgt
                merged.hits.append(tgt)
            seen = {(h.s_start, h.s_end, h.strand) for h in tgt.hsps}
            for h in hit.hsps:
                h.q_start += segment.start
                h.q_end += segment.start
                h.evalue *= scale
                key = (h.s_start, h.s_end, h.strand)
                if key not in seen:
                    tgt.hsps.append(h)
                    seen.add(key)
    merged.sort()
    return merged


def search_segmented(program: Callable[..., SearchResults], query: str,
                     db: SequenceDB, n_segments: int, overlap: int = 50,
                     params: SearchParams | None = None,
                     query_id: str = "query") -> SearchResults:
    """Run *program* (e.g. :func:`repro.blast.blastn`) over a segmented
    query and merge — what a query-segmentation worker pool computes."""
    segments = segment_query(query, n_segments, overlap)
    pieces = []
    for seg in segments:
        res = program(seg.text, db, params=params,
                      query_id=f"{query_id}|seg{seg.index}")
        pieces.append((seg, res))
    return merge_segment_results(len(query), pieces)
