"""The five classic BLAST programs.

====================  ===========  ============  =========================
program               query        database      comparison space
====================  ===========  ============  =========================
blastn                nucleotide   nucleotide    nucleotide (both strands)
blastp                protein      protein       protein
blastx                nucleotide   protein       query translated, 6 frames
tblastn               protein      nucleotide    database translated, 6 frames
tblastx               nucleotide   nucleotide    both translated, 6x6 frames
====================  ===========  ============  =========================

``blastall(program, ...)`` dispatches by name, mirroring NCBI's single
entry point (Section 2.1 of the paper).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blast.alphabet import encode_dna, encode_protein
from repro.blast.score import NucleotideScore, ProteinScore, ScoringScheme
from repro.blast.search import SearchParams, SearchResults, search
from repro.blast.seqdb import AA, NT, SequenceDB
from repro.blast.translate import six_frames


def _nt_params(params: Optional[SearchParams]) -> SearchParams:
    return params or SearchParams(word_size=11, gapped_trigger=18,
                                  xdrop_ungapped=20)


def _aa_params(params: Optional[SearchParams]) -> SearchParams:
    return params or SearchParams(word_size=3, neighbor_threshold=11,
                                  xdrop_ungapped=16, gapped_trigger=22)


def program_defaults(program: str, params: Optional[SearchParams] = None
                     ) -> tuple:
    """The ``(scheme, params)`` pair a program runs with by default.

    This is the single source of truth the parallel CLI path shares
    with the serial dispatch above, so ``--jobs N`` cannot drift from
    what ``blastall`` would have used serially.
    """
    if program == "blastn":
        return NucleotideScore(), _nt_params(params)
    if program == "blastp":
        return ProteinScore(), _aa_params(params)
    raise ValueError(f"no direct search defaults for {program!r}")


def blastn(query: str, db: SequenceDB, params: Optional[SearchParams] = None,
           scheme: Optional[ScoringScheme] = None,
           query_id: str = "query") -> SearchResults:
    """Nucleotide query vs nucleotide database."""
    if db.seqtype != NT:
        raise ValueError("blastn needs a nucleotide database")
    return search(encode_dna(query), db, scheme or NucleotideScore(),
                  _nt_params(params), query_id=query_id, both_strands=True)


def blastp(query: str, db: SequenceDB, params: Optional[SearchParams] = None,
           scheme: Optional[ScoringScheme] = None,
           query_id: str = "query") -> SearchResults:
    """Protein query vs protein database."""
    if db.seqtype != AA:
        raise ValueError("blastp needs a protein database")
    return search(encode_protein(query), db, scheme or ProteinScore(),
                  _aa_params(params), query_id=query_id)


def blastx(query: str, db: SequenceDB, params: Optional[SearchParams] = None,
           scheme: Optional[ScoringScheme] = None,
           query_id: str = "query") -> SearchResults:
    """Nucleotide query translated in six frames vs protein database."""
    if db.seqtype != AA:
        raise ValueError("blastx needs a protein database")
    dna = encode_dna(query)
    scheme = scheme or ProteinScore()
    params = _aa_params(params)
    merged: Optional[SearchResults] = None
    for frame, prot in six_frames(dna):
        if len(prot) < params.word_size:
            continue
        res = search(prot, db, scheme, params,
                     query_id=f"{query_id}|frame{frame:+d}")
        for hit in res.hits:
            for h in hit.hsps:
                h.strand = frame
        res.query_id = query_id
        if merged is None:
            merged = res
        else:
            merged.hits.extend(res.hits)
    if merged is None:
        merged = SearchResults(query_id, len(query) // 3,
                               db.total_residues, len(db))
    merged.query_len = len(query)
    merged.sort()
    return merged


def _translated_db(db: SequenceDB) -> SequenceDB:
    """Six-frame translation of a nucleotide database into a protein
    database; frame is recorded in the description."""
    out = SequenceDB(AA, name=f"{db.name}.xlate",
                     fragment_id=db.fragment_id)
    for sid in range(len(db)):
        dna = db.sequence(sid)
        desc = db.description(sid)
        for frame, prot in six_frames(dna):
            if len(prot) == 0:
                continue
            out.add(f"{desc}|frame{frame:+d}", prot)
    return out


def tblastn(query: str, db: SequenceDB, params: Optional[SearchParams] = None,
            scheme: Optional[ScoringScheme] = None,
            query_id: str = "query") -> SearchResults:
    """Protein query vs nucleotide database translated in six frames."""
    if db.seqtype != NT:
        raise ValueError("tblastn needs a nucleotide database")
    xdb = _translated_db(db)
    return search(encode_protein(query), xdb, scheme or ProteinScore(),
                  _aa_params(params), query_id=query_id)


def tblastx(query: str, db: SequenceDB, params: Optional[SearchParams] = None,
            scheme: Optional[ScoringScheme] = None,
            query_id: str = "query") -> SearchResults:
    """Translated nucleotide query vs translated nucleotide database."""
    if db.seqtype != NT:
        raise ValueError("tblastx needs a nucleotide database")
    xdb = _translated_db(db)
    return blastx(query, xdb, params, scheme, query_id=query_id)


_PROGRAMS = {
    "blastn": blastn,
    "blastp": blastp,
    "blastx": blastx,
    "tblastn": tblastn,
    "tblastx": tblastx,
}


def blastall(program: str, query: str, db: SequenceDB,
             params: Optional[SearchParams] = None,
             query_id: str = "query") -> SearchResults:
    """Single dispatch interface over the five programs (like NCBI's
    ``blastall`` binary)."""
    try:
        fn = _PROGRAMS[program]
    except KeyError:
        raise ValueError(f"unknown program {program!r}; "
                         f"choose from {sorted(_PROGRAMS)}") from None
    return fn(query, db, params=params, query_id=query_id)
