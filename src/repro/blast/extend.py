"""Ungapped X-drop extension along a diagonal.

From a seed word the alignment is extended left and right; extension in
a direction stops when the running score falls more than X below the
best score seen in that direction (Altschul et al. 1990).  Both
directions are fully vectorised: the per-position substitution scores
along the diagonal are cumulative-summed and the X-drop cut-off is found
with a running maximum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.blast.score import ScoringScheme


@dataclass
class UngappedHSP:
    """An ungapped high-scoring segment pair."""

    q_start: int
    s_start: int
    length: int
    score: int

    @property
    def q_end(self) -> int:
        """Exclusive query end."""
        return self.q_start + self.length

    @property
    def s_end(self) -> int:
        return self.s_start + self.length


def _best_prefix(scores: np.ndarray, xdrop: int) -> Tuple[int, int]:
    """Given per-position scores walking away from an anchor, return
    (number of positions taken, their total score) under X-drop."""
    if len(scores) == 0:
        return 0, 0
    cum = np.cumsum(scores)
    runmax = np.maximum.accumulate(np.maximum(cum, 0))
    dropped = runmax - cum > xdrop
    if dropped.any():
        stop = int(np.argmax(dropped))  # first True
    else:
        stop = len(scores)
    if stop == 0:
        return 0, 0
    best = int(np.argmax(cum[:stop]))
    if cum[best] <= 0:
        return 0, 0
    return best + 1, int(cum[best])


def ungapped_extend(query: np.ndarray, subject: np.ndarray,
                    qpos: int, spos: int, scheme: ScoringScheme,
                    xdrop: int = 20, word_size: int = 0) -> UngappedHSP:
    """Extend a seed at (qpos, spos) in both directions.

    ``word_size`` only anchors the naming: extension runs from the seed
    *position* outward in both directions, so the seed word itself is
    covered by the right extension.
    """
    # Right extension: positions qpos.., spos.. (inclusive of the seed).
    n_right = min(len(query) - qpos, len(subject) - spos)
    right_scores = scheme.pair_scores(query[qpos:qpos + n_right],
                                      subject[spos:spos + n_right])
    right_len, right_score = _best_prefix(right_scores, xdrop)

    # Left extension: positions qpos-1.., spos-1.. moving backwards.
    n_left = min(qpos, spos)
    if n_left:
        left_scores = scheme.pair_scores(query[qpos - n_left:qpos][::-1],
                                         subject[spos - n_left:spos][::-1])
        left_len, left_score = _best_prefix(left_scores, xdrop)
    else:
        left_len, left_score = 0, 0

    return UngappedHSP(
        q_start=qpos - left_len,
        s_start=spos - left_len,
        length=left_len + right_len,
        score=left_score + right_score,
    )
