"""Ungapped X-drop extension along a diagonal.

From a seed word the alignment is extended left and right; extension in
a direction stops when the running score falls more than X below the
best score seen in that direction (Altschul et al. 1990).  Both
directions are fully vectorised: the per-position substitution scores
along the diagonal are cumulative-summed and the X-drop cut-off is found
with a running maximum.

:func:`batched_ungapped_extend` is the bulk form the scan kernel uses:
seeds are grouped into runs per diagonal, each diagonal's substitution
scores are gathered **once**, and every seed on the diagonal extends
from slices of that shared array — including the per-diagonal coverage
dedup (a seed inside an HSP already found on its diagonal is skipped).
It produces exactly the candidates the one-call-per-seed path produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blast.score import ScoringScheme


@dataclass
class UngappedHSP:
    """An ungapped high-scoring segment pair."""

    q_start: int
    s_start: int
    length: int
    score: int

    @property
    def q_end(self) -> int:
        """Exclusive query end."""
        return self.q_start + self.length

    @property
    def s_end(self) -> int:
        return self.s_start + self.length

    @property
    def diag(self) -> int:
        """Diagonal ``s_start - q_start`` — also the diagonal the
        banded gapped stage centres its band on, since the candidate's
        midpoint lies on this diagonal."""
        return self.s_start - self.q_start


_CHUNK = 128


def _best_prefix(scores: np.ndarray, xdrop: int) -> Tuple[int, int]:
    """Given per-position scores walking away from an anchor, return
    (number of positions taken, their total score) under X-drop.

    Works through *scores* in geometrically growing chunks: the X-drop
    rule almost always terminates within the first few dozen positions,
    so the common case touches ``_CHUNK`` elements instead of the whole
    diagonal.  Results are identical to a single full-length pass."""
    total = len(scores)
    if total == 0:
        return 0, 0
    lo = 0
    carry = 0           # cumulative score entering the chunk
    carry_max = 0       # running max of max(cum, 0) entering the chunk
    best_val = 0        # best positive cumulative score so far
    best_idx = -1
    chunk = _CHUNK
    while lo < total:
        hi = min(total, lo + chunk)
        cum = np.cumsum(scores[lo:hi])
        if carry:
            cum += carry
        runmax = np.maximum.accumulate(np.maximum(cum, carry_max))
        dropped = runmax - cum > xdrop
        if dropped.any():
            stop = int(np.argmax(dropped))  # first True in this chunk
        else:
            stop = hi - lo
        if stop:
            head = cum[:stop]
            b = int(np.argmax(head))
            if head[b] > best_val:
                best_val = int(head[b])
                best_idx = lo + b
        if stop < hi - lo:
            break
        carry = int(cum[-1])
        carry_max = int(runmax[-1])
        lo = hi
        chunk *= 4
    if best_idx < 0:
        return 0, 0
    return best_idx + 1, best_val


def ungapped_extend(query: np.ndarray, subject: np.ndarray,
                    qpos: int, spos: int, scheme: ScoringScheme,
                    xdrop: int = 20, word_size: int = 0) -> UngappedHSP:
    """Extend a seed at (qpos, spos) in both directions.

    ``word_size`` only anchors the naming: extension runs from the seed
    *position* outward in both directions, so the seed word itself is
    covered by the right extension.
    """
    # Right extension: positions qpos.., spos.. (inclusive of the seed).
    n_right = min(len(query) - qpos, len(subject) - spos)
    right_scores = scheme.pair_scores(query[qpos:qpos + n_right],
                                      subject[spos:spos + n_right])
    right_len, right_score = _best_prefix(right_scores, xdrop)

    # Left extension: positions qpos-1.., spos-1.. moving backwards.
    n_left = min(qpos, spos)
    if n_left:
        left_scores = scheme.pair_scores(query[qpos - n_left:qpos][::-1],
                                         subject[spos - n_left:spos][::-1])
        left_len, left_score = _best_prefix(left_scores, xdrop)
    else:
        left_len, left_score = 0, 0

    return UngappedHSP(
        q_start=qpos - left_len,
        s_start=spos - left_len,
        length=left_len + right_len,
        score=left_score + right_score,
    )


#: Window width of the vectorised bulk X-drop pass: extensions that do
#: not terminate within this many positions (true alignments, not the
#: random-hit noise that dominates seed counts) fall back to the exact
#: per-seed chunked scan.
_BULK_WINDOW = 64
#: Row-chunk bound of the bulk pass, capping peak scratch memory at
#: roughly ``8 * _BULK_ROWS * _BULK_WINDOW * 8`` bytes.
_BULK_ROWS = 4096


def _bulk_prefix(qcat: np.ndarray, scat: np.ndarray,
                 q0: np.ndarray, s0: np.ndarray, avail: np.ndarray,
                 step: int, scheme: ScoringScheme, xdrop: int,
                 window: int) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`_best_prefix` over many seeds at once.

    Row ``i`` walks ``avail[i]`` positions from ``(q0[i], s0[i])`` in
    *step* direction (+1 right, -1 left) through the flat query /
    subject concatenations.  The first *window* positions of every row
    are scored in one 2-D gather; positions past a row's ``avail`` are
    padded with ``-(xdrop + 1)``, which trips the X-drop test exactly
    at the boundary, so any row whose scan terminates inside the window
    gets the same (length, score) answer as the scalar pass.  Rows that
    neither drop nor end within the window re-run the exact per-seed
    scan.  Returns ``(lengths, scores)`` int64 arrays.
    """
    n = len(q0)
    out_len = np.zeros(n, dtype=np.int64)
    out_score = np.zeros(n, dtype=np.int64)
    if n == 0:
        return out_len, out_score
    pad = -(xdrop + 1)
    cols = np.arange(window, dtype=np.int64)
    for lo in range(0, n, _BULK_ROWS):
        hi = min(n, lo + _BULK_ROWS)
        av = avail[lo:hi]
        valid = cols < av[:, None]
        # Out-of-window gathers are masked anyway; clamp their indexes
        # to 0 so the matrix lookup never leaves the concatenations.
        qi = np.where(valid, q0[lo:hi, None] + step * cols, 0)
        si = np.where(valid, s0[lo:hi, None] + step * cols, 0)
        pair = scheme.pair_scores(qcat[qi], scat[si]).astype(np.int64,
                                                            copy=False)
        scores = np.where(valid, pair, pad)
        cum = np.cumsum(scores, axis=1, dtype=np.int64)
        runmax = np.maximum.accumulate(np.maximum(cum, 0), axis=1)
        dropped = (runmax - cum) > xdrop
        has_drop = dropped.any(axis=1)
        stop = np.where(has_drop, np.argmax(dropped, axis=1), window)
        head = np.where(cols < stop[:, None], cum, np.int64(-(2 ** 62)))
        best = np.argmax(head, axis=1)
        val = head[np.arange(hi - lo), best]
        pos = val > 0
        out_len[lo:hi][pos] = best[pos] + 1
        out_score[lo:hi][pos] = val[pos]
        # Exact re-scan of rows the window could not settle.
        for i in np.nonzero(~has_drop & (av > window))[0]:
            a = int(av[i])
            walk = step * np.arange(a, dtype=np.int64)
            row = scheme.pair_scores(qcat[int(q0[lo + i]) + walk],
                                     scat[int(s0[lo + i]) + walk])
            out_len[lo + i], out_score[lo + i] = _best_prefix(row, xdrop)
    return out_len, out_score


def bulk_ungapped_extend(qcat: np.ndarray, scat: np.ndarray,
                         gq: np.ndarray, gs: np.ndarray,
                         avail_l: np.ndarray, avail_r: np.ndarray,
                         scheme: ScoringScheme, xdrop: int = 20
                         ) -> Tuple[np.ndarray, np.ndarray,
                                    np.ndarray, np.ndarray]:
    """X-drop extend many seeds across many query/subject pairs at once.

    The batched search driver's extension kernel: *gq*/*gs* are seed
    anchors as **flat positions** into the query concatenation *qcat*
    and the packed fragment *scat*, so one 2-D gather scores seeds
    belonging to different queries, strands and subjects together —
    no per-(query, subject) numpy dispatch at all.  ``avail_l`` /
    ``avail_r`` bound each seed's walk to its own sequence, which is
    what keeps sentinels and neighbouring sequences out of the scoring
    window.

    Per seed the answer — ``(left_len, left_score, right_len,
    right_score)`` — is exactly what :func:`ungapped_extend` computes
    from the equivalent per-sequence slices.
    """
    right_len, right_score = _bulk_prefix(qcat, scat, gq, gs, avail_r,
                                          +1, scheme, xdrop, _BULK_WINDOW)
    left_len, left_score = _bulk_prefix(qcat, scat, gq - 1, gs - 1, avail_l,
                                        -1, scheme, xdrop, _BULK_WINDOW)
    return left_len, left_score, right_len, right_score


def batched_ungapped_extend(query: np.ndarray, subject: np.ndarray,
                            seeds: Sequence[Tuple[int, int]],
                            scheme: ScoringScheme,
                            xdrop: int = 20,
                            stats: Optional[Dict[str, int]] = None
                            ) -> List[UngappedHSP]:
    """Extend many seeds against one subject, batched per diagonal.

    *seeds* are ``(query position, subject position)`` pairs as produced
    by the seeding functions (grouped by diagonal, ascending subject
    position within a diagonal).  For each diagonal run the full
    diagonal's substitution scores are computed once; every seed on it
    then extends from slices of that array.  Seeds falling inside an
    HSP already extended on their diagonal are filtered out *before*
    paying any extension cost, and only positive-score HSPs are
    returned — the same coverage-dedup rule the per-seed driver
    applied, so extension work stays bounded by accepted diagonal runs
    instead of growing linearly in redundant word hits.

    *stats*, when given, accumulates ``seeds`` (seen) and
    ``seeds_skipped`` (dropped by the covered-run prefilter) counters —
    the profiling hook's view of how much extension the filter saved.
    """
    out: List[UngappedHSP] = []
    covered: Dict[int, int] = {}
    m, n = len(query), len(subject)
    i, n_seeds = 0, len(seeds)
    if stats is not None:
        stats["seeds"] = stats.get("seeds", 0) + n_seeds
    while i < n_seeds:
        qp0, sp0 = seeds[i]
        dg = sp0 - qp0
        j = i
        while j < n_seeds and seeds[j][1] - seeds[j][0] == dg:
            j += 1
        # Substitution scores of the whole diagonal, gathered once.
        q_lo = max(0, -dg)
        q_hi = min(m, n - dg)
        diag_scores = scheme.pair_scores(query[q_lo:q_hi],
                                         subject[q_lo + dg:q_hi + dg])
        for t in range(i, j):
            qp, sp = seeds[t]
            if covered.get(dg, -1) >= sp:
                if stats is not None:
                    stats["seeds_skipped"] = stats.get("seeds_skipped", 0) + 1
                continue
            anchor = qp - q_lo
            right_len, right_score = _best_prefix(diag_scores[anchor:], xdrop)
            left_len, left_score = _best_prefix(diag_scores[:anchor][::-1],
                                                xdrop)
            hsp = UngappedHSP(q_start=qp - left_len, s_start=sp - left_len,
                              length=left_len + right_len,
                              score=left_score + right_score)
            covered[dg] = hsp.s_end
            if hsp.score > 0:
                out.append(hsp)
        i = j
    return out
