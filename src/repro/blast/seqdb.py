"""Sequence databases: the ``formatdb`` equivalent.

A :class:`SequenceDB` holds encoded sequences with their descriptions,
either nucleotide (``nt``) or protein (``aa``).  It can be written to /
loaded from a three-file on-disk format modelled on NCBI's::

    <name>.nin / .pin   index: magic, type, counts, offset tables
    <name>.nsq / .psq   sequence data (2-bit packed nt, raw aa codes)
    <name>.nhr / .phr   concatenated description strings

:func:`segment_db` implements mpiBLAST-style database segmentation:
sequences are partitioned into fragments balanced by residue count
(greedy longest-first binning), each fragment being a database in its
own right.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.blast.alphabet import (
    decode_dna,
    decode_protein,
    encode_dna,
    encode_protein,
    pack_2bit,
    unpack_2bit,
)
from repro.blast.fasta import FastaRecord, parse_fasta

MAGIC = b"RPDB"
VERSION = 1

NT = "nt"
AA = "aa"

_EXT = {NT: ("nin", "nsq", "nhr"), AA: ("pin", "psq", "phr")}


class SequenceDB:
    """An in-memory sequence database."""

    def __init__(self, seqtype: str = NT, name: str = "db",
                 fragment_id: Optional[int] = None):
        if seqtype not in (NT, AA):
            raise ValueError(f"seqtype must be 'nt' or 'aa', got {seqtype!r}")
        self.seqtype = seqtype
        self.name = name
        self.fragment_id = fragment_id
        self._seqs: List[np.ndarray] = []
        self._descriptions: List[str] = []
        #: When this database is a fragment cut from a parent database,
        #: the parent ordinal of each sequence (``source_ids[i]`` is the
        #: parent id of local sequence ``i``); ``None`` otherwise.  The
        #: parallel runtime uses it to map fragment-local hits back to
        #: whole-database subject ids in the cross-fragment merge.
        self.source_ids: Optional[List[int]] = None
        #: Mutation counter: bumped on every ``add`` so caches keyed on
        #: database identity (the scan-structure cache) can tell a
        #: mutated database from the one they packed.
        self._version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, description: str, sequence: Union[str, np.ndarray]) -> int:
        """Add a sequence; returns its ordinal id."""
        if isinstance(sequence, str):
            enc = encode_dna(sequence) if self.seqtype == NT else encode_protein(sequence)
        else:
            enc = np.asarray(sequence, dtype=np.uint8)
        if len(enc) == 0:
            raise ValueError("empty sequence")
        self._seqs.append(enc)
        self._descriptions.append(description)
        self._version += 1
        return len(self._seqs) - 1

    @classmethod
    def from_records(cls, records: Iterable[FastaRecord], seqtype: str = NT,
                     name: str = "db") -> "SequenceDB":
        db = cls(seqtype, name)
        for rec in records:
            db.add(rec.description, rec.sequence)
        return db

    @classmethod
    def from_fasta_text(cls, text: str, seqtype: str = NT,
                        name: str = "db") -> "SequenceDB":
        return cls.from_records(parse_fasta(text), seqtype, name)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._seqs)

    @property
    def n_sequences(self) -> int:
        return len(self._seqs)

    @property
    def total_residues(self) -> int:
        return sum(len(s) for s in self._seqs)

    def sequence(self, i: int) -> np.ndarray:
        return self._seqs[i]

    def description(self, i: int) -> str:
        return self._descriptions[i]

    def sequence_str(self, i: int) -> str:
        dec = decode_dna if self.seqtype == NT else decode_protein
        return dec(self._seqs[i])

    def __iter__(self):
        return iter(zip(self._descriptions, self._seqs))

    def lengths(self) -> List[int]:
        return [len(s) for s in self._seqs]

    def subset(self, ids: Sequence[int], name: Optional[str] = None,
               fragment_id: Optional[int] = None) -> "SequenceDB":
        """A new database holding the given sequences, in the given
        order, remembering their parent ids in ``source_ids``."""
        sub = SequenceDB(self.seqtype,
                         name if name is not None else f"{self.name}.sub",
                         fragment_id=fragment_id)
        for i in ids:
            sub.add(self._descriptions[i], self._seqs[i])
        sub.source_ids = [int(i) for i in ids]
        return sub

    # ------------------------------------------------------------------
    # On-disk format
    # ------------------------------------------------------------------
    def paths(self, directory: str) -> Tuple[str, str, str]:
        idx, seq, hdr = _EXT[self.seqtype]
        base = os.path.join(directory, self.name)
        return (f"{base}.{idx}", f"{base}.{seq}", f"{base}.{hdr}")

    def write(self, directory: str) -> Tuple[str, str, str]:
        """Write the three database files; returns their paths."""
        os.makedirs(directory, exist_ok=True)
        idx_path, seq_path, hdr_path = self.paths(directory)
        seq_blobs: List[bytes] = []
        seq_offsets = [0]
        lengths: List[int] = []
        for enc in self._seqs:
            if self.seqtype == NT:
                blob, n = pack_2bit(enc)
            else:
                blob, n = enc.tobytes(), len(enc)
            seq_blobs.append(blob)
            seq_offsets.append(seq_offsets[-1] + len(blob))
            lengths.append(n)
        hdr_blobs = [d.encode() for d in self._descriptions]
        hdr_offsets = [0]
        for b in hdr_blobs:
            hdr_offsets.append(hdr_offsets[-1] + len(b))

        with open(seq_path, "wb") as f:
            for blob in seq_blobs:
                f.write(blob)
        with open(hdr_path, "wb") as f:
            for blob in hdr_blobs:
                f.write(blob)
        with open(idx_path, "wb") as f:
            f.write(MAGIC)
            f.write(struct.pack("<IBQ", VERSION, 0 if self.seqtype == NT else 1,
                                len(self._seqs)))
            f.write(np.asarray(seq_offsets, dtype="<u8").tobytes())
            f.write(np.asarray(hdr_offsets, dtype="<u8").tobytes())
            f.write(np.asarray(lengths, dtype="<u8").tobytes())
        return idx_path, seq_path, hdr_path

    @classmethod
    def load(cls, directory: str, name: str, seqtype: str = NT) -> "SequenceDB":
        """Load a database previously written with :meth:`write`."""
        db = cls(seqtype, name)
        idx_path, seq_path, hdr_path = db.paths(directory)
        with open(idx_path, "rb") as f:
            magic = f.read(4)
            if magic != MAGIC:
                raise ValueError(f"{idx_path}: bad magic {magic!r}")
            version, type_code, n = struct.unpack("<IBQ", f.read(13))
            if version != VERSION:
                raise ValueError(f"unsupported version {version}")
            if (type_code == 0) != (seqtype == NT):
                raise ValueError("database type mismatch")
            seq_offsets = np.frombuffer(f.read(8 * (n + 1)), dtype="<u8")
            hdr_offsets = np.frombuffer(f.read(8 * (n + 1)), dtype="<u8")
            lengths = np.frombuffer(f.read(8 * n), dtype="<u8")
        with open(seq_path, "rb") as f:
            seq_data = f.read()
        with open(hdr_path, "rb") as f:
            hdr_data = f.read()
        for i in range(n):
            blob = seq_data[seq_offsets[i]:seq_offsets[i + 1]]
            if seqtype == NT:
                enc = unpack_2bit(blob, int(lengths[i]))
            else:
                enc = np.frombuffer(blob, dtype=np.uint8).copy()
            desc = hdr_data[hdr_offsets[i]:hdr_offsets[i + 1]].decode()
            db.add(desc, enc)
        return db

    def disk_size(self, directory: str) -> int:
        """Total bytes of the three files on disk."""
        return sum(os.path.getsize(p) for p in self.paths(directory))

    def __repr__(self) -> str:  # pragma: no cover
        frag = f" frag={self.fragment_id}" if self.fragment_id is not None else ""
        return (f"<SequenceDB {self.name!r} {self.seqtype} "
                f"n={len(self)} residues={self.total_residues}{frag}>")


def format_db(fasta_text: str, seqtype: str = NT, name: str = "db") -> SequenceDB:
    """``formatdb`` equivalent: FASTA text in, database out."""
    return SequenceDB.from_fasta_text(fasta_text, seqtype, name)


def segment_db(db: SequenceDB, n_fragments: int) -> List[SequenceDB]:
    """mpiBLAST-style database segmentation.

    Greedy longest-first binning balances fragments by residue count.
    Every sequence lands in exactly one fragment.
    """
    if n_fragments < 1:
        raise ValueError("n_fragments must be >= 1")
    if n_fragments > len(db) and len(db) > 0:
        n_fragments = len(db)
    frags = [SequenceDB(db.seqtype, f"{db.name}.{i:03d}", fragment_id=i)
             for i in range(n_fragments)]
    loads = [0] * n_fragments
    order = sorted(range(len(db)), key=lambda i: -len(db.sequence(i)))
    for i in order:
        target = loads.index(min(loads))
        frags[target].add(db.description(i), db.sequence(i))
        loads[target] += len(db.sequence(i))
    return frags
