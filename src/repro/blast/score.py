"""Scoring schemes: nucleotide match/mismatch and BLOSUM62.

Default parameters follow classic NCBI blastn/blastp defaults of the
paper's era: blastn reward +1 / penalty -3, gap open 5 / extend 2;
blastp BLOSUM62, gap open 11 / extend 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.blast.alphabet import DNA, PROTEIN

_BLOSUM62_TEXT = """
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
-2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
-1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
-4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
"""


def _build_blosum62() -> np.ndarray:
    rows = [[int(x) for x in line.split()]
            for line in _BLOSUM62_TEXT.strip().splitlines()]
    m24 = np.array(rows, dtype=np.int32)
    assert m24.shape == (24, 24)
    # Extend to 25x25 for U (selenocysteine), scored like C.
    n = len(PROTEIN)
    m = np.full((n, n), -4, dtype=np.int32)
    m[:24, :24] = m24
    c = PROTEIN.index("C")
    u = PROTEIN.index("U")
    m[u, :24] = m24[c, :]
    m[:24, u] = m24[:, c]
    m[u, u] = m24[c, c]
    return m


#: The standard BLOSUM62 substitution matrix over :data:`PROTEIN`.
BLOSUM62 = _build_blosum62()
BLOSUM62.setflags(write=False)


@dataclass(frozen=True)
class ScoringScheme:
    """A substitution matrix + affine gap penalties.

    ``gap_open`` is the cost of the first gapped position and
    ``gap_extend`` of each further one (both positive numbers; they are
    subtracted).
    """

    matrix: np.ndarray
    gap_open: int
    gap_extend: int
    alphabet: str

    def score(self, a: int, b: int) -> int:
        return int(self.matrix[a, b])

    def pair_scores(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorised element-wise substitution scores."""
        return self.matrix[np.asarray(xs, dtype=np.intp),
                           np.asarray(ys, dtype=np.intp)]

    @property
    def max_score(self) -> int:
        return int(self.matrix.max())


def NucleotideScore(match: int = 1, mismatch: int = -3,
                    gap_open: int = 5, gap_extend: int = 2) -> ScoringScheme:
    """blastn-style scoring (defaults: +1/-3, gaps 5/2)."""
    if match <= 0 or mismatch >= 0:
        raise ValueError("need match > 0 and mismatch < 0")
    n = len(DNA)
    m = np.full((n, n), mismatch, dtype=np.int32)
    np.fill_diagonal(m, match)
    m.setflags(write=False)
    return ScoringScheme(m, gap_open, gap_extend, DNA)


def ProteinScore(gap_open: int = 11, gap_extend: int = 1) -> ScoringScheme:
    """blastp-style scoring (BLOSUM62, gaps 11/1)."""
    return ScoringScheme(BLOSUM62, gap_open, gap_extend, PROTEIN)
