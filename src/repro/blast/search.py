"""The BLAST search driver.

Pipeline (Altschul et al. 1990/1997):

1. scan the database's word codes against the query word index;
2. pick seeds (one-hit for nucleotide, two-hit for protein);
3. ungapped X-drop extension of each seed, deduplicated per diagonal;
4. banded gapped extension of HSPs above the gapped trigger score;
5. Karlin–Altschul E-values; keep hits under the E-value cutoff.

Two engines drive step 1.  The default ``"scan"`` engine packs the
whole database fragment into one sentinel-separated concatenation
(:mod:`repro.blast.scankernel`), computes rolling word codes once per
fragment (cached across queries in the :class:`~repro.blast.scankernel.
ScanCache`), scans the query index against everything in one shot, and
only then drops to per-sequence work for the handful of subjects with
word hits.  The legacy ``"loop"`` engine scans one subject at a time;
it is retained as the reference implementation — both engines produce
identical :class:`SearchResults`.

Results merge across database fragments by alignment score, which is
exactly what the mpiBLAST master does with worker results.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blast.alphabet import DNA, PROTEIN, reverse_complement
from repro.blast.extend import (UngappedHSP, batched_ungapped_extend,
                                bulk_ungapped_extend, ungapped_extend)
from repro.blast.gapped import (GappedAlignment, banded_local_align,
                                bulk_banded_score)
from repro.blast.xdrop import xdrop_gapped_extend
from repro.blast.kmer import WordIndex, dna_word_codes, protein_word_codes
from repro.blast.profile import current_profile, profiled
from repro.blast.scankernel import (QueryBatch, ScanCache, default_scan_cache,
                                    scan_fragment, scan_fragment_batch)
from repro.blast.score import NucleotideScore, ProteinScore, ScoringScheme
from repro.blast.seed import (one_hit_seeds, one_hit_seeds_grouped,
                              two_hit_seeds)
from repro.blast.seqdb import AA, NT, SequenceDB
from repro.blast.stats import (KarlinAltschul, effective_search_space,
                               karlin_altschul_params)

#: Engine used when ``search(..., engine=None)``: the vectorized
#: concatenated-fragment kernel.  ``"loop"`` selects the legacy
#: per-sequence scan (the reference implementation).
DEFAULT_ENGINE = "scan"


@dataclass(frozen=True)
class SearchParams:
    """Tunable knobs of the search pipeline."""

    #: Word size (11 for blastn, 3 for blastp).
    word_size: int = 11
    #: Neighbourhood threshold T for protein words.
    neighbor_threshold: int = 11
    #: X-drop for ungapped extension.
    xdrop_ungapped: int = 20
    #: Ungapped score needed to attempt gapped extension.
    gapped_trigger: int = 22
    #: Diagonal band half-width for gapped extension.
    band: int = 24
    #: Report cutoff.
    evalue_cutoff: float = 10.0
    #: Two-hit window A (protein only; 0 disables two-hit seeding).
    two_hit_window: int = 40
    #: Keep at most this many HSPs per subject sequence.
    max_hsps: int = 10
    #: Do gapped refinement at all (BLAST 1.x behaviour when False).
    gapped: bool = True
    #: Mask low-complexity query regions before seeding (DUST / SEG).
    filter_low_complexity: bool = False
    #: Apply NCBI's length adjustment (edge-effect correction) to the
    #: E-value search space.
    effective_lengths: bool = False
    #: Gapped refinement algorithm: "banded" (fixed diagonal band) or
    #: "xdrop" (NCBI's adaptive-region extension; finds indels larger
    #: than the band at somewhat higher cost).
    gapped_method: str = "banded"
    #: Run banded gapped refinement as the two-pass batched pipeline
    #: (score-only bulk forward pass, pointer-matrix traceback only for
    #: survivors).  Output is byte-identical to the scalar path; this
    #: and ``REPRO_GAPPED_BULK=0`` exist as an exact fallback switch.
    gapped_bulk: bool = True
    #: At most this many gapped DP problems per (orientation, subject)
    #: group; further triggered candidates are dropped.  0 (default)
    #: disables the cap — with it off, output never changes.
    max_gapped_per_subject: int = 0


@dataclass
class HSP:
    """One reported high-scoring pair."""

    q_start: int
    q_end: int
    s_start: int
    s_end: int
    score: int
    bit_score: float
    evalue: float
    identities: int
    align_len: int
    #: +1 / -1 (nucleotide minus-strand hits), or frame for translated.
    strand: int = 1
    #: Alignment operations ("M" pair, "D" query-vs-gap, "I" gap-vs-
    #: subject); empty when not tracked.
    ops: str = ""

    @property
    def identity(self) -> float:
        return self.identities / self.align_len if self.align_len else 0.0


@dataclass
class Hit:
    """All HSPs against one database sequence."""

    subject_id: int
    description: str
    subject_len: int
    hsps: List[HSP] = field(default_factory=list)
    #: Which fragment the subject came from (for merged results).
    fragment_id: Optional[int] = None

    @property
    def best_score(self) -> int:
        return max((h.score for h in self.hsps), default=0)

    @property
    def best_evalue(self) -> float:
        return min((h.evalue for h in self.hsps), default=float("inf"))


@dataclass
class SearchResults:
    """Hits for one query against one database (or fragment)."""

    query_id: str
    query_len: int
    db_residues: int
    db_sequences: int
    hits: List[Hit] = field(default_factory=list)

    def sort(self) -> None:
        """Order hits best-first (by E-value, then score)."""
        for hit in self.hits:
            hit.hsps.sort(key=lambda h: (h.evalue, -h.score))
        self.hits.sort(key=lambda h: (h.best_evalue, -h.best_score))

    def best(self) -> Optional[HSP]:
        self.sort()
        return self.hits[0].hsps[0] if self.hits and self.hits[0].hsps else None

    def merge(self, other: "SearchResults") -> "SearchResults":
        """Combine results from another fragment of the same database —
        the master's merge step in parallel BLAST."""
        if other.query_id != self.query_id:
            raise ValueError("cannot merge results for different queries")
        merged = SearchResults(
            query_id=self.query_id,
            query_len=self.query_len,
            db_residues=self.db_residues + other.db_residues,
            db_sequences=self.db_sequences + other.db_sequences,
            hits=self.hits + other.hits,
        )
        # E-values were computed against fragment sizes; rescale to the
        # combined database size (E scales linearly in n).
        for hit in merged.hits:
            src = self if hit in self.hits else other
            if src.db_residues > 0:
                factor = merged.db_residues / src.db_residues
                for h in hit.hsps:
                    h.evalue *= factor
        merged.sort()
        return merged

    def tabular(self, max_hits: int = 0) -> str:
        """Tab-separated output (NCBI outfmt-6 column order):

        query id, subject id, % identity, alignment length, mismatches,
        gap opens, q. start, q. end, s. start, s. end, evalue, bit
        score.  Coordinates are 1-based inclusive, like NCBI's.
        """
        self.sort()
        rows = []
        hits = self.hits if max_hits <= 0 else self.hits[:max_hits]
        for hit in hits:
            sid = (hit.description.split()[0] if hit.description
                   else str(hit.subject_id))
            for h in hit.hsps:
                gap_opens = 0
                prev = ""
                for op in h.ops:
                    if op in "DI" and op != prev:
                        gap_opens += 1
                    prev = op
                gap_cols = h.ops.count("D") + h.ops.count("I")
                mismatches = h.align_len - h.identities - gap_cols
                rows.append("\t".join([
                    self.query_id, sid,
                    f"{100 * h.identity:.3f}", str(h.align_len),
                    str(mismatches), str(gap_opens),
                    str(h.q_start + 1), str(h.q_end),
                    str(h.s_start + 1), str(h.s_end),
                    f"{h.evalue:.2e}", f"{h.bit_score:.1f}",
                ]))
        return "\n".join(rows)

    def report(self, max_hits: int = 25) -> str:
        """Plain-text summary table."""
        self.sort()
        lines = [
            f"Query: {self.query_id} ({self.query_len} letters)",
            f"Database: {self.db_sequences} sequences, {self.db_residues} letters",
            "",
            f"{'Subject':<40s} {'bits':>7s} {'E':>10s} {'ident':>6s}",
        ]
        for hit in self.hits[:max_hits]:
            h = hit.hsps[0]
            desc = hit.description[:40]
            lines.append(
                f"{desc:<40s} {h.bit_score:7.1f} {h.evalue:10.2e} "
                f"{100 * h.identity:5.1f}%")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def merge_fragment_results(by_pack: Dict[str, "SearchResults"],
                           ids_by_name: Dict[str, List[int]], *,
                           query_id: str, query_len: int,
                           db_residues: int, db_sequences: int,
                           fragment_id: Optional[int] = None,
                           keep_fragment_ids: bool = False
                           ) -> "SearchResults":
    """Merge per-fragment results into one whole-database result.

    *by_pack* maps pack name to that fragment's ``SearchResults`` (hits
    carry fragment-local subject ids); *ids_by_name* maps pack name to
    the fragment's global id table.  Because every worker searched with
    the whole database's Karlin–Altschul parameters and effective
    space (shipped in the job spec), scores and E-values need no
    rescaling here — the merge is pure relabelling plus the serial
    engine's deterministic ordering, which is what makes the parallel
    path byte-identical to a serial scan.

    Hits are mutated in place (subject ids globalized; fragment ids
    overwritten with *fragment_id* unless *keep_fragment_ids*).
    """
    merged = SearchResults(query_id=query_id, query_len=query_len,
                           db_residues=db_residues,
                           db_sequences=db_sequences)
    for pack_name, res in by_pack.items():
        ids = ids_by_name[pack_name]
        for hit in res.hits:
            hit.subject_id = ids[hit.subject_id]
            if not keep_fragment_ids:
                hit.fragment_id = fragment_id
            merged.hits.append(hit)
    # Deterministic cross-fragment tie-break: pre-order by global
    # subject id (the order a serial scan appends hits in), then the
    # standard stable result sort.
    merged.hits.sort(key=lambda h: h.subject_id)
    merged.sort()
    return merged


# ----------------------------------------------------------------------
def resolve_ka(scheme: ScoringScheme, params: SearchParams,
               is_protein: bool) -> KarlinAltschul:
    """The Karlin–Altschul parameters :func:`search` uses when none are
    passed explicitly.

    Exposed so the parallel runtime (:mod:`repro.exec`) can compute the
    exact same statistics on the master and ship them to every worker —
    fragment results stay bit-identical to a serial whole-database
    search.
    """
    if is_protein:
        key = (f"aa:blosum62:{scheme.gap_open}/{scheme.gap_extend}"
               if params.gapped else None)
    else:
        match = int(scheme.matrix[0, 0])
        mis = int(scheme.matrix[0, 1])
        key = (f"nt:{'+' if match > 0 else ''}{match}/{mis}:"
               f"{scheme.gap_open}/{scheme.gap_extend}"
               if params.gapped else None)
    return karlin_altschul_params(scheme.matrix, gapped_key=key)


def _hsps_for_strand(query: np.ndarray, subject: np.ndarray,
                     index: WordIndex, scheme: ScoringScheme,
                     params: SearchParams, is_protein: bool,
                     ka: KarlinAltschul, m_eff: int, n_eff: int,
                     strand: int,
                     identity_query: Optional[np.ndarray] = None
                     ) -> List[HSP]:
    """Steps 1-4 for one query orientation against one subject (the
    legacy per-sequence scan)."""
    if is_protein:
        codes = protein_word_codes(subject, params.word_size)
    else:
        codes = dna_word_codes(subject, params.word_size)
    spos, qpos = index.scan(codes)
    if len(spos) == 0:
        return []
    return _hsps_from_hits(query, subject, spos, qpos, scheme, params,
                           is_protein, ka, m_eff, n_eff, strand,
                           identity_query=identity_query)


def _hsps_from_hits(query: np.ndarray, subject: np.ndarray,
                    spos: np.ndarray, qpos: np.ndarray,
                    scheme: ScoringScheme, params: SearchParams,
                    is_protein: bool, ka: KarlinAltschul,
                    m_eff: int, n_eff: int, strand: int,
                    identity_query: Optional[np.ndarray] = None
                    ) -> List[HSP]:
    """Steps 2-4 from word hits for one orientation/subject pair."""
    candidates = _collect_candidates(query, subject, spos, qpos, scheme,
                                     params, is_protein)
    return _candidates_to_hsps(query, subject, candidates, scheme, params,
                               is_protein, ka, m_eff, n_eff, strand,
                               identity_query=identity_query)


def _collect_candidates(query: np.ndarray, subject: np.ndarray,
                        spos: np.ndarray, qpos: np.ndarray,
                        scheme: ScoringScheme, params: SearchParams,
                        is_protein: bool) -> List[UngappedHSP]:
    """Steps 2-3 (seeding + ungapped extension) from word hits for one
    orientation/subject pair."""
    prof = current_profile()
    t0 = time.perf_counter() if prof is not None else 0.0
    if is_protein and params.two_hit_window > 0:
        seeds = two_hit_seeds(spos, qpos, params.word_size, params.two_hit_window)
    else:
        seeds = one_hit_seeds(spos, qpos)
    if prof is not None:
        prof.add("seed", time.perf_counter() - t0)
    if not seeds:
        return []

    # Ungapped extension, batched per diagonal, with coverage dedup:
    # a seed already inside a previous HSP on its diagonal is skipped.
    t0 = time.perf_counter() if prof is not None else 0.0
    candidates = batched_ungapped_extend(
        query, subject, seeds, scheme, xdrop=params.xdrop_ungapped,
        stats=prof.counters if prof is not None else None)
    if prof is not None:
        prof.add("extend", time.perf_counter() - t0)
    return candidates


def _candidates_to_hsps(query: np.ndarray, subject: np.ndarray,
                        candidates: List[UngappedHSP],
                        scheme: ScoringScheme, params: SearchParams,
                        is_protein: bool, ka: KarlinAltschul,
                        m_eff: int, n_eff: int, strand: int,
                        identity_query: Optional[np.ndarray] = None
                        ) -> List[HSP]:
    """Steps 4-5 (gapped refinement, dedup, E-value filter) from
    ungapped candidates for one orientation/subject pair — the scalar
    reference path (one DP with traceback per triggered candidate)."""
    if not candidates:
        return []
    id_query = query if identity_query is None else identity_query
    prof = current_profile()
    candidates.sort(key=lambda h: -h.score)
    candidates = candidates[:params.max_hsps]

    out: List[HSP] = []
    seen_spans: List[Tuple[int, int]] = []
    n_gapped = 0
    for cand in candidates:
        if params.gapped and cand.score >= params.gapped_trigger:
            if (params.max_gapped_per_subject > 0
                    and n_gapped >= params.max_gapped_per_subject):
                if prof is not None:
                    prof.count("gapped_culled")
                continue
            n_gapped += 1
            mid_q = cand.q_start + cand.length // 2
            mid_s = cand.s_start + cand.length // 2
            t0 = time.perf_counter() if prof is not None else 0.0
            if params.gapped_method == "xdrop":
                aln = xdrop_gapped_extend(query, subject, mid_q, mid_s,
                                          scheme, xdrop=2 * params.band)
            else:
                aln = banded_local_align(query, subject, mid_s - mid_q,
                                         scheme, band=params.band,
                                         identity_query=identity_query)
            if prof is not None:
                prof.add("gapped", time.perf_counter() - t0)
                prof.count("gapped_trials")
                prof.count("gapped_traceback")
            if aln.score <= 0:
                continue
            q0, q1, s0, s1 = aln.q_start, aln.q_end, aln.s_start, aln.s_end
            score = aln.score
            identities, align_len = aln.identities, aln.align_len
            ops = aln.ops
        else:
            q0, q1 = cand.q_start, cand.q_end
            s0, s1 = cand.s_start, cand.s_end
            score = cand.score
            matches = id_query[q0:q1] == subject[s0:s1]
            identities = int(np.count_nonzero(matches))
            align_len = cand.length
            ops = "M" * align_len
        # Drop duplicates: identical subject spans found via different seeds.
        span = (s0, s1)
        if span in seen_spans:
            continue
        seen_spans.append(span)
        evalue = ka.evalue(score, m_eff, n_eff)
        if evalue > params.evalue_cutoff:
            continue
        out.append(HSP(
            q_start=q0, q_end=q1, s_start=s0, s_end=s1,
            score=score, bit_score=ka.bit_score(score), evalue=evalue,
            identities=identities, align_len=align_len, strand=strand,
            ops=ops,
        ))
    return out


#: Environment kill-switch for the batched gapped pipeline: ``0``
#: forces the scalar reference path regardless of ``SearchParams``.
GAPPED_BULK_ENV = "REPRO_GAPPED_BULK"

#: Below this many triggered candidates the scalar path wins — the
#: batched forward pass re-scores everything and then still pays the
#: survivor tracebacks, which only pays off once there is enough to
#: cull (measured crossover is well under this on the dev box; the
#: routing is invisible in output, both paths are exact).
_BULK_MIN_CANDIDATES = 24


def _gapped_bulk_enabled(params: SearchParams) -> bool:
    """Whether the two-pass batched gapped pipeline should run."""
    if not params.gapped_bulk:
        return False
    return (os.environ.get(GAPPED_BULK_ENV) or "").strip() != "0"


@dataclass
class _GappedJob:
    """One orientation/subject group's ungapped candidates awaiting
    steps 4-5, plus everything needed to finalize them into HSPs.

    *q_off* / *s_off* locate the oriented query and the subject inside
    the flat concatenations handed to :func:`_finalize_candidates`;
    finalized HSPs are appended to *sink* so callers can batch many
    groups through one bulk DP and still read results back in their
    original accumulation order.
    """

    query: np.ndarray
    subject: np.ndarray
    q_off: int
    s_off: int
    candidates: List[UngappedHSP]
    m_eff: int
    n_eff: int
    strand: int
    identity_query: Optional[np.ndarray]
    sink: List[HSP]


def _finalize_candidates(jobs: List[_GappedJob], qcat: np.ndarray,
                         scat: np.ndarray, scheme: ScoringScheme,
                         params: SearchParams, is_protein: bool,
                         ka: KarlinAltschul) -> None:
    """Steps 4-5 for many orientation/subject groups at once.

    The batched pipeline runs gapped refinement in two passes.  **Pass
    1** scores every distinct (group, diagonal) band DP with one
    :func:`~repro.blast.gapped.bulk_banded_score` call — every
    triggered candidate on a diagonal shares the band DP centred on
    it, because ``banded_local_align`` depends on the seed only
    through the diagonal.  **Pass 2** replays each group's scalar
    decision sequence from the pass-1 scores and runs the
    pointer-matrix traceback only for candidates that still need one:
    zero-score and over-cap candidates are dropped outright, and an
    E-value-rejected candidate skips traceback when its subject end
    position (known exactly from pass 1) is unique among the group's
    prospective spans — the only way its never-rendered span could
    influence later dedup decisions would be colliding with a span
    sharing that end.  Output is byte-identical to running
    :func:`_candidates_to_hsps` per group.

    The scalar reference path serves ungapped searches, the xdrop
    method, and ``gapped_bulk`` opt-outs.
    """
    if not jobs:
        return
    # Both paths are exact, so routing is purely a cost call: with only
    # a handful of triggered candidates (typical blastn — seeds match
    # little but the true source) the batched forward pass plus the
    # survivor tracebacks costs more than just running the scalar DPs.
    n_triggered = sum(1 for job in jobs for c in job.candidates
                      if c.score >= params.gapped_trigger)
    if (not params.gapped or params.gapped_method != "banded"
            or n_triggered < _BULK_MIN_CANDIDATES
            or not _gapped_bulk_enabled(params)):
        for job in jobs:
            job.sink.extend(_candidates_to_hsps(
                job.query, job.subject, job.candidates, scheme, params,
                is_protein, ka, job.m_eff, job.n_eff, job.strand,
                identity_query=job.identity_query))
        return

    prof = current_profile()
    cap = params.max_gapped_per_subject
    # Scalar preamble, replayed exactly: best-first order, max_hsps.
    for job in jobs:
        job.candidates.sort(key=lambda h: -h.score)
        del job.candidates[params.max_hsps:]

    # Pass 1: collect one score-only DP problem per distinct
    # (group, diagonal) among the triggered, under-cap candidates.
    diags_of: List[Dict[int, int]] = []
    e_qoff: List[int] = []
    e_qlen: List[int] = []
    e_soff: List[int] = []
    e_slen: List[int] = []
    e_diag: List[int] = []
    for job in jobs:
        diags: Dict[int, int] = {}
        n_gapped = 0
        for cand in job.candidates:
            if cand.score < params.gapped_trigger:
                continue
            if cap > 0 and n_gapped >= cap:
                continue
            n_gapped += 1
            dg = cand.diag
            if dg not in diags:
                diags[dg] = len(e_diag)
                e_qoff.append(job.q_off)
                e_qlen.append(len(job.query))
                e_soff.append(job.s_off)
                e_slen.append(len(job.subject))
                e_diag.append(dg)
        diags_of.append(diags)

    if e_diag:
        t0 = time.perf_counter() if prof is not None else 0.0
        scores, _qends, sends = bulk_banded_score(
            qcat, scat,
            np.array(e_qoff, dtype=np.int64),
            np.array(e_qlen, dtype=np.int64),
            np.array(e_soff, dtype=np.int64),
            np.array(e_slen, dtype=np.int64),
            np.array(e_diag, dtype=np.int64),
            scheme, band=params.band)
        if prof is not None:
            prof.add("gapped_bulk", time.perf_counter() - t0)
            prof.count("gapped_trials", len(e_diag))
    else:
        scores = sends = np.zeros(0, dtype=np.int64)

    for job, diags in zip(jobs, diags_of):
        _finalize_one(job, diags, scores, sends, scheme, params, ka, prof)


def _finalize_one(job: _GappedJob, diags: Dict[int, int],
                  scores: np.ndarray, sends: np.ndarray,
                  scheme: ScoringScheme, params: SearchParams,
                  ka: KarlinAltschul, prof) -> None:
    """Pass 2 of the batched gapped pipeline for one group: replay the
    scalar candidate loop from the bulk scores, tracing back only when
    an alignment's exact extent can still matter."""
    cap = params.max_gapped_per_subject

    # Census of the *emittable* candidates' subject end positions.  A
    # span is appended to the dedup list before the E-value check, so
    # a rejected candidate's span can influence output only by
    # deduplicating a later candidate that would otherwise be emitted —
    # which requires an E-value-passing candidate with the *same* span,
    # hence the same subject end.  (Rejected candidates deduplicating
    # each other is invisible: whichever appends first, the span value
    # ends up in the list and none of them is emitted.)  E-values here
    # depend only on scores, all known exactly after pass 1.
    end_count: Dict[int, int] = {}
    n_gapped = 0
    for cand in job.candidates:
        if cand.score >= params.gapped_trigger:
            if cap > 0 and n_gapped >= cap:
                continue
            n_gapped += 1
            ei = diags[cand.diag]
            score = int(scores[ei])
            if score <= 0:
                continue
            se = int(sends[ei])
        else:
            score = cand.score
            se = cand.s_end
        if ka.evalue(score, job.m_eff, job.n_eff) <= params.evalue_cutoff:
            end_count[se] = end_count.get(se, 0) + 1

    out = job.sink
    seen_spans: List[Tuple[int, int]] = []
    memo: Dict[int, GappedAlignment] = {}
    n_gapped = 0
    for cand in job.candidates:
        if cand.score >= params.gapped_trigger:
            if cap > 0 and n_gapped >= cap:
                if prof is not None:
                    prof.count("gapped_culled")
                continue
            n_gapped += 1
            ei = diags[cand.diag]
            score = int(scores[ei])
            if score <= 0:
                if prof is not None:
                    prof.count("gapped_culled")
                continue
            evalue = ka.evalue(score, job.m_eff, job.n_eff)
            if (evalue > params.evalue_cutoff
                    and end_count.get(int(sends[ei]), 0) == 0):
                # E-value reject whose span cannot deduplicate any
                # emittable candidate: the scalar path would discard
                # it after appending a span that can never change what
                # is rendered.  No traceback needed.
                if prof is not None:
                    prof.count("gapped_culled")
                continue
            aln = memo.get(cand.diag)
            if aln is None:
                t0 = time.perf_counter() if prof is not None else 0.0
                aln = banded_local_align(job.query, job.subject,
                                         cand.diag, scheme,
                                         band=params.band,
                                         identity_query=job.identity_query)
                if prof is not None:
                    prof.add("gapped", time.perf_counter() - t0)
                    prof.count("gapped_traceback")
                memo[cand.diag] = aln
            elif prof is not None:
                prof.count("gapped_culled")
            if aln.score <= 0:
                continue
            q0, q1, s0, s1 = aln.q_start, aln.q_end, aln.s_start, aln.s_end
            score = aln.score
            identities, align_len = aln.identities, aln.align_len
            ops = aln.ops
        else:
            q0, q1 = cand.q_start, cand.q_end
            s0, s1 = cand.s_start, cand.s_end
            score = cand.score
            id_query = (job.query if job.identity_query is None
                        else job.identity_query)
            matches = id_query[q0:q1] == job.subject[s0:s1]
            identities = int(np.count_nonzero(matches))
            align_len = cand.length
            ops = "M" * align_len
        span = (s0, s1)
        if span in seen_spans:
            continue
        seen_spans.append(span)
        evalue = ka.evalue(score, job.m_eff, job.n_eff)
        if evalue > params.evalue_cutoff:
            continue
        out.append(HSP(
            q_start=q0, q_end=q1, s_start=s0, s_end=s1,
            score=score, bit_score=ka.bit_score(score), evalue=evalue,
            identities=identities, align_len=align_len,
            strand=job.strand, ops=ops,
        ))


def search(query: np.ndarray, db: SequenceDB, scheme: ScoringScheme,
           params: Optional[SearchParams] = None,
           query_id: str = "query",
           ka: Optional[KarlinAltschul] = None,
           both_strands: bool = True,
           identity_query: Optional[np.ndarray] = None,
           engine: Optional[str] = None,
           scan_cache: Optional[ScanCache] = None,
           effective_space: Optional[Tuple[int, int]] = None) -> SearchResults:
    """Search an encoded *query* against every sequence of *db*.

    For nucleotide databases the reverse-complement strand of the query
    is searched too (``both_strands``).

    *engine* selects the scan driver: ``"scan"`` (default) uses the
    vectorized concatenated-fragment kernel with cached scan structures
    (*scan_cache*, defaulting to the process-wide
    :func:`~repro.blast.scankernel.default_scan_cache`); ``"loop"`` is
    the legacy per-sequence scan.  Both produce identical results.

    *effective_space* overrides the ``(m_eff, n_eff)`` search space the
    E-values are computed against.  The parallel runtime passes the
    *whole* database's space to every fragment search so per-fragment
    E-values — and the cutoff they are filtered by — come out exactly
    as a serial whole-database search would produce them.

    With ``REPRO_PROFILE=1`` in the environment each top-level call
    emits one JSON line of per-stage timings to stderr (see
    :mod:`repro.blast.profile`).
    """
    with profiled("search", query_id=query_id, query_len=len(query)):
        return _search_impl(query, db, scheme, params, query_id, ka,
                            both_strands, identity_query, engine,
                            scan_cache, effective_space)


def _search_impl(query: np.ndarray, db: SequenceDB, scheme: ScoringScheme,
                 params: Optional[SearchParams],
                 query_id: str,
                 ka: Optional[KarlinAltschul],
                 both_strands: bool,
                 identity_query: Optional[np.ndarray],
                 engine: Optional[str],
                 scan_cache: Optional[ScanCache],
                 effective_space: Optional[Tuple[int, int]]) -> SearchResults:
    params = params or SearchParams()
    engine = engine or DEFAULT_ENGINE
    if engine not in ("scan", "loop"):
        raise ValueError(f"engine must be 'scan' or 'loop', got {engine!r}")
    is_protein = db.seqtype == AA
    if ka is None:
        ka = resolve_ka(scheme, params, is_protein)

    m = len(query)
    n_total = db.total_residues
    results = SearchResults(query_id=query_id, query_len=m,
                            db_residues=n_total, db_sequences=len(db))
    if m < params.word_size:
        return results
    if effective_space is not None:
        m_eff, n_eff = effective_space
    elif params.effective_lengths:
        m_eff, n_eff = effective_search_space(ka, m, n_total, len(db))
    else:
        m_eff, n_eff = m, n_total

    def word_skip(oriented: np.ndarray):
        if not params.filter_low_complexity:
            return None
        from repro.blast.filter import apply_query_filter

        _, skip = apply_query_filter(oriented, is_protein, params.word_size)
        return skip

    prof = current_profile()
    t0 = time.perf_counter() if prof is not None else 0.0
    if is_protein:
        index = WordIndex.for_protein(query, scheme, params.word_size,
                                      params.neighbor_threshold,
                                      skip=word_skip(query))
        orientations = [(query, index, 1)]
    else:
        index = WordIndex.for_dna(query, params.word_size,
                                  skip=word_skip(query))
        orientations = [(query, index, 1)]
        if both_strands:
            rc = reverse_complement(query)
            orientations.append(
                (rc, WordIndex.for_dna(rc, params.word_size,
                                       skip=word_skip(rc)), -1))
    if prof is not None:
        prof.add("index", time.perf_counter() - t0)

    if engine == "scan":
        # Vectorized kernel: one scan over the packed fragment, then
        # per-sequence work only for subjects with word hits.
        # Explicit None check: an *empty* ScanCache is falsy (__len__).
        cache = scan_cache if scan_cache is not None else default_scan_cache()
        base = len(PROTEIN) if is_protein else len(DNA)
        # A pack-backed db (shm segment or mmapped disk pack) already
        # *is* the scan structure — take it directly; the cache only
        # serves databases that must be (re)built.
        t0 = time.perf_counter() if prof is not None else 0.0
        provider = getattr(db, "scan_structures", None)
        structs = provider(params.word_size, base) if provider else None
        if structs is None:
            structs = cache.get(db, params.word_size, base)
        if prof is not None:
            prof.add("pack", time.perf_counter() - t0)
        per_sid: Dict[int, List[HSP]] = {}
        jobs: List[_GappedJob] = []
        collected: List[Tuple[int, List[HSP]]] = []
        q_offs: List[int] = []
        off = 0
        for oriented_query, _, _ in orientations:
            q_offs.append(off)
            off += len(oriented_query)
        for oi, (oriented_query, oriented_index, strand) in \
                enumerate(orientations):
            t0 = time.perf_counter() if prof is not None else 0.0
            groups = scan_fragment(oriented_index, structs)
            if prof is not None:
                prof.add("scan", time.perf_counter() - t0)
            for sid, spos, qpos in groups:
                cands = _collect_candidates(
                    oriented_query, structs.subject(sid), spos, qpos,
                    scheme, params, is_protein)
                if not cands:
                    continue
                sink: List[HSP] = []
                jobs.append(_GappedJob(
                    query=oriented_query, subject=structs.subject(sid),
                    q_off=q_offs[oi], s_off=int(structs.starts[sid]),
                    candidates=cands, m_eff=m_eff, n_eff=n_eff,
                    strand=strand, identity_query=identity_query,
                    sink=sink))
                collected.append((sid, sink))
        if jobs:
            qcat = (orientations[0][0] if len(orientations) == 1
                    else np.concatenate([o[0] for o in orientations]))
            _finalize_candidates(jobs, qcat, structs.concat, scheme,
                                 params, is_protein, ka)
        for sid, sink in collected:
            if sink:
                per_sid.setdefault(sid, []).extend(sink)
        for sid in sorted(per_sid):
            hsps = per_sid[sid]
            hsps.sort(key=lambda h: (h.evalue, -h.score))
            results.hits.append(Hit(
                subject_id=sid,
                description=db.description(sid),
                subject_len=int(structs.lengths[sid]),
                hsps=hsps[:params.max_hsps],
                fragment_id=db.fragment_id,
            ))
    else:
        for sid in range(len(db)):
            subject = db.sequence(sid)
            hsps = []
            for oriented_query, oriented_index, strand in orientations:
                hsps.extend(_hsps_for_strand(
                    oriented_query, subject, oriented_index, scheme, params,
                    is_protein, ka, m_eff, n_eff, strand,
                    identity_query=identity_query))
            if hsps:
                hsps.sort(key=lambda h: (h.evalue, -h.score))
                results.hits.append(Hit(
                    subject_id=sid,
                    description=db.description(sid),
                    subject_len=len(subject),
                    hsps=hsps[:params.max_hsps],
                    fragment_id=db.fragment_id,
                ))
    results.sort()
    return results


def search_batch(queries: Sequence[np.ndarray], db: SequenceDB,
                 scheme: ScoringScheme,
                 params: Optional[SearchParams] = None, *,
                 query_ids: Optional[Sequence[str]] = None,
                 ka: Optional[KarlinAltschul] = None,
                 both_strands: bool = True,
                 identity_queries: Optional[Sequence[Optional[np.ndarray]]] = None,
                 engine: Optional[str] = None,
                 scan_cache: Optional[ScanCache] = None,
                 effective_spaces: Optional[Sequence[Optional[Tuple[int, int]]]]
                 = None) -> List[SearchResults]:
    """Search N queries against *db* in one pass over the fragment.

    Byte-identical to N sequential :func:`search` calls — same hits,
    same HSPs, same ordering — but all query orientations are packed
    into one :class:`~repro.blast.scankernel.QueryBatch` so the
    fragment's cached word codes are traversed **once** (one presence
    gather + one hit-mapping ``searchsorted``) instead of once per
    orientation.  Per-(query, subject) seeding and extension then run
    on exactly the hit groups the per-query scan would have produced.

    Per-query arguments (*query_ids*, *identity_queries*,
    *effective_spaces*) are parallel sequences; ``None`` entries take
    the same defaults as :func:`search`.  *ka* is resolved once and
    shared — the parallel runtime ships one set of Karlin–Altschul
    parameters per job batch for the same reason.

    ``engine="loop"`` falls back to sequential reference searches.
    """
    with profiled("search_batch", n_queries=len(queries)):
        return _search_batch_impl(queries, db, scheme, params, query_ids,
                                  ka, both_strands, identity_queries,
                                  engine, scan_cache, effective_spaces)


def _search_batch_impl(queries, db, scheme, params, query_ids, ka,
                       both_strands, identity_queries, engine, scan_cache,
                       effective_spaces) -> List[SearchResults]:
    params = params or SearchParams()
    engine = engine or DEFAULT_ENGINE
    if engine not in ("scan", "loop"):
        raise ValueError(f"engine must be 'scan' or 'loop', got {engine!r}")
    n_q = len(queries)
    if query_ids is None:
        query_ids = ["query"] * n_q
    if identity_queries is None:
        identity_queries = [None] * n_q
    if effective_spaces is None:
        effective_spaces = [None] * n_q
    if not (len(query_ids) == len(identity_queries)
            == len(effective_spaces) == n_q):
        raise ValueError("per-query argument sequences must match "
                         "len(queries)")
    is_protein = db.seqtype == AA
    if ka is None:
        ka = resolve_ka(scheme, params, is_protein)

    if engine == "loop":
        return [search(q, db, scheme, params, query_id=query_ids[qi],
                       ka=ka, both_strands=both_strands,
                       identity_query=identity_queries[qi], engine="loop",
                       scan_cache=scan_cache,
                       effective_space=effective_spaces[qi])
                for qi, q in enumerate(queries)]

    n_total = db.total_residues
    results = [SearchResults(query_id=query_ids[qi], query_len=len(q),
                             db_residues=n_total, db_sequences=len(db))
               for qi, q in enumerate(queries)]

    def word_skip(oriented: np.ndarray):
        if not params.filter_low_complexity:
            return None
        from repro.blast.filter import apply_query_filter

        _, skip = apply_query_filter(oriented, is_protein, params.word_size)
        return skip

    prof = current_profile()
    # One entry per (query, orientation), in (query, +strand-first)
    # order — the order the sequential driver accumulates HSPs in,
    # which is what keeps the batched path byte-identical.  Queries
    # shorter than the word size contribute no entries (the sequential
    # driver returns their empty results before building an index).
    t0 = time.perf_counter() if prof is not None else 0.0
    entries: List[Tuple[int, np.ndarray, int]] = []
    indexes: List[WordIndex] = []
    spaces: List[Optional[Tuple[int, int]]] = [None] * n_q
    for qi, q in enumerate(queries):
        if len(q) < params.word_size:
            continue
        if effective_spaces[qi] is not None:
            spaces[qi] = tuple(effective_spaces[qi])
        elif params.effective_lengths:
            spaces[qi] = effective_search_space(ka, len(q), n_total, len(db))
        else:
            spaces[qi] = (len(q), n_total)
        if is_protein:
            entries.append((qi, q, 1))
            indexes.append(WordIndex.for_protein(
                q, scheme, params.word_size, params.neighbor_threshold,
                skip=word_skip(q)))
        else:
            entries.append((qi, q, 1))
            indexes.append(WordIndex.for_dna(q, params.word_size,
                                             skip=word_skip(q)))
            if both_strands:
                rc = reverse_complement(q)
                entries.append((qi, rc, -1))
                indexes.append(WordIndex.for_dna(rc, params.word_size,
                                                 skip=word_skip(rc)))
    if not entries:
        return results
    batch = QueryBatch(indexes)
    if prof is not None:
        prof.add("index", time.perf_counter() - t0)

    cache = scan_cache if scan_cache is not None else default_scan_cache()
    base = len(PROTEIN) if is_protein else len(DNA)
    t0 = time.perf_counter() if prof is not None else 0.0
    provider = getattr(db, "scan_structures", None)
    structs = provider(params.word_size, base) if provider else None
    if structs is None:
        structs = cache.get(db, params.word_size, base)
    if prof is not None:
        prof.add("pack", time.perf_counter() - t0)

    t0 = time.perf_counter() if prof is not None else 0.0
    groups = scan_fragment_batch(batch, structs)
    if prof is not None:
        prof.add("scan", time.perf_counter() - t0)

    # Flat concatenation of every entry's oriented query, mirroring the
    # fragment concatenation: one pair of flat arrays serves every
    # (entry, subject) extension and the bulk gapped pass.
    qlens = np.array([len(e[1]) for e in entries], dtype=np.int64)
    qstarts = np.zeros(len(entries), dtype=np.int64)
    np.cumsum(qlens[:-1], out=qstarts[1:])
    qcat = np.concatenate([e[1] for e in entries])

    per_q: Dict[int, Dict[int, List[HSP]]] = {}
    jobs: List[_GappedJob] = []
    order: List[Tuple[int, int, List[HSP]]] = []
    if is_protein and params.two_hit_window > 0:
        # Two-hit seeding is an inherently sequential per-diagonal scan;
        # run the per-group reference seeding/extension on each hit
        # group (gapped refinement still batches across groups).
        for eid, sid, spos, qpos in groups:
            qi, oriented_query, strand = entries[eid]
            cands = _collect_candidates(oriented_query,
                                        structs.subject(sid), spos, qpos,
                                        scheme, params, is_protein)
            if not cands:
                continue
            m_eff, n_eff = spaces[qi]
            sink: List[HSP] = []
            jobs.append(_GappedJob(
                query=oriented_query, subject=structs.subject(sid),
                q_off=int(qstarts[eid]), s_off=int(structs.starts[sid]),
                candidates=cands, m_eff=m_eff, n_eff=n_eff,
                strand=strand, identity_query=identity_queries[qi],
                sink=sink))
            order.append((qi, sid, sink))
    elif groups:
        _bulk_groups_to_jobs(groups, entries, structs, scheme, params,
                             spaces, identity_queries, qcat, qstarts,
                             qlens, jobs, order)
    _finalize_candidates(jobs, qcat, structs.concat, scheme, params,
                         is_protein, ka)
    for qi, sid, sink in order:
        if sink:
            per_q.setdefault(qi, {}).setdefault(sid, []).extend(sink)
    for qi, per_sid in per_q.items():
        res = results[qi]
        for sid in sorted(per_sid):
            hsps = per_sid[sid]
            hsps.sort(key=lambda h: (h.evalue, -h.score))
            res.hits.append(Hit(
                subject_id=sid,
                description=db.description(sid),
                subject_len=int(structs.lengths[sid]),
                hsps=hsps[:params.max_hsps],
                fragment_id=db.fragment_id,
            ))
        res.sort()
    return results


def _bulk_groups_to_jobs(groups, entries, structs, scheme, params,
                         spaces, identity_queries, qcat, qstarts, qlens,
                         jobs, order) -> None:
    """Steps 2-3 for every batched hit group at once (one-hit seeding).

    Instead of paying per-(query, subject) numpy dispatch for seeding
    and ungapped extension — which dominates once the shared scan pass
    is amortised over the batch — the whole hit stream is seeded with
    one grouped lexsort and extended with one flat 2-D gather against
    the query/subject concatenations (*qcat* with per-entry *qstarts*
    offsets and ``structs.concat``).  The per-diagonal coverage dedup
    is then replayed per group from the bulk extents, and each group's
    surviving candidates become one :class:`_GappedJob` appended to
    *jobs* — with a matching ``(query, subject id, sink)`` row in
    *order* — for the caller's :func:`_finalize_candidates` pass, so
    each group contributes exactly the HSPs :func:`_hsps_from_hits`
    would have produced for it.
    """
    prof = current_profile()
    g_eid = np.array([g[0] for g in groups], dtype=np.int64)
    g_sid = np.array([g[1] for g in groups], dtype=np.int64)
    gid_of_hit = np.repeat(
        np.arange(len(groups), dtype=np.int64),
        np.array([len(g[2]) for g in groups], dtype=np.int64))
    sp_all = np.concatenate([g[2] for g in groups])
    qp_all = np.concatenate([g[3] for g in groups])

    t0 = time.perf_counter() if prof is not None else 0.0
    sgid, sqp, ssp = one_hit_seeds_grouped(gid_of_hit, sp_all, qp_all)
    if prof is not None:
        prof.add("seed", time.perf_counter() - t0)
        prof.count("seeds", len(sgid))

    t0 = time.perf_counter() if prof is not None else 0.0
    seid = g_eid[sgid]
    ssid = g_sid[sgid]
    ll, ls, rl, rs = bulk_ungapped_extend(
        qcat, structs.concat,
        qstarts[seid] + sqp, structs.starts[ssid] + ssp,
        np.minimum(sqp, ssp),
        np.minimum(qlens[seid] - sqp, structs.lengths[ssid] - ssp),
        scheme, xdrop=params.xdrop_ungapped)
    if prof is not None:
        prof.add("extend", time.perf_counter() - t0)

    # sgid is group-major; per-group seed slices by binary search.
    bounds = np.searchsorted(sgid, np.arange(len(groups) + 1))
    sqp_l, ssp_l = sqp.tolist(), ssp.tolist()
    ll_l, ls_l = ll.tolist(), ls.tolist()
    rl_l, rs_l = rl.tolist(), rs.tolist()
    skipped = 0
    for gi, (eid, sid, _, _) in enumerate(groups):
        lo, hi = int(bounds[gi]), int(bounds[gi + 1])
        if lo == hi:
            continue
        # Replay of the per-diagonal coverage dedup: a seed inside the
        # extent of the previously accepted extension on its diagonal
        # contributes nothing (identical to batched_ungapped_extend).
        covered: Dict[int, int] = {}
        cands: List[UngappedHSP] = []
        for i in range(lo, hi):
            qp, sp = sqp_l[i], ssp_l[i]
            dg = sp - qp
            if covered.get(dg, -1) >= sp:
                skipped += 1
                continue
            s0 = sp - ll_l[i]
            length = ll_l[i] + rl_l[i]
            covered[dg] = s0 + length
            score = ls_l[i] + rs_l[i]
            if score > 0:
                cands.append(UngappedHSP(q_start=qp - ll_l[i], s_start=s0,
                                         length=length, score=score))
        if not cands:
            continue
        qi, oriented_query, strand = entries[eid]
        m_eff, n_eff = spaces[qi]
        sink: List[HSP] = []
        jobs.append(_GappedJob(
            query=oriented_query, subject=structs.subject(sid),
            q_off=int(qstarts[eid]), s_off=int(structs.starts[sid]),
            candidates=cands, m_eff=m_eff, n_eff=n_eff, strand=strand,
            identity_query=identity_queries[qi], sink=sink))
        order.append((qi, sid, sink))
    if prof is not None and skipped:
        prof.count("seeds_skipped", skipped)
