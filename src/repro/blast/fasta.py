"""Minimal, strict FASTA I/O."""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterable, Iterator, List, TextIO, Union


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA entry."""

    #: Full description line (without the leading ``>``).
    description: str
    #: The sequence, uppercased, whitespace stripped.
    sequence: str

    @property
    def id(self) -> str:
        """First whitespace-delimited token of the description."""
        return self.description.split()[0] if self.description else ""

    def __len__(self) -> int:
        return len(self.sequence)


def iter_fasta(source: Union[str, TextIO]) -> Iterator[FastaRecord]:
    """Stream FASTA records one at a time.

    Unlike :func:`parse_fasta` this never materialises more than the
    record currently being assembled, so a multi-gigabyte FASTA file
    can be formatted in bounded memory (the streaming pack builder in
    :mod:`repro.exec.diskpack` relies on this).  Raises ``ValueError``
    on malformed input (data before the first header, empty sequences).
    """
    if isinstance(source, str):
        source = io.StringIO(source)
    desc: str | None = None
    chunks: List[str] = []

    def flush() -> FastaRecord:
        seq = "".join(chunks)
        if not seq:
            raise ValueError(f"empty sequence for {desc!r}")
        return FastaRecord(desc, seq)

    for lineno, line in enumerate(source, 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith(">"):
            if desc is not None:
                yield flush()
            desc = line[1:].strip()
            chunks = []
        else:
            if desc is None:
                raise ValueError(f"line {lineno}: sequence data before header")
            chunks.append(line.upper().replace(" ", ""))
    if desc is not None:
        yield flush()


def parse_fasta(source: Union[str, TextIO]) -> List[FastaRecord]:
    """Parse FASTA text (a string or a file-like object).

    Raises ``ValueError`` on malformed input (data before the first
    header, empty sequences).
    """
    return list(iter_fasta(source))


def write_fasta(records: Iterable[FastaRecord], width: int = 70) -> str:
    """Render records as FASTA text."""
    out: List[str] = []
    for rec in records:
        out.append(f">{rec.description}")
        seq = rec.sequence
        for i in range(0, len(seq), width):
            out.append(seq[i:i + width])
    return "\n".join(out) + ("\n" if out else "")
