"""Greedy alignment and megablast.

Megablast (Zhang et al. 2000, "A greedy algorithm for aligning DNA
sequences") was NCBI's fast path for high-identity nucleotide searches
in the paper's era: a large word size (28) finds near-exact anchors,
and extension uses a *greedy* diagonal-walking algorithm that is
O(differences x length) instead of O(length x band) — dramatically
faster when sequences are a few percent apart, the common case for
assembly and EST work.

The greedy walker is Myers' O(ND) scheme: after d differences
(mismatch, or one-base gap on either side) it records, per diagonal
``k = i - j``, the farthest query index reachable plus the exact number
of matched bases along the way.  Scores use megablast's non-affine
convention: +match per matched pair, -penalty per difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.blast.score import ScoringScheme
from repro.blast.search import SearchParams, SearchResults
from repro.blast.seqdb import NT, SequenceDB


@dataclass(frozen=True)
class GreedyExtension:
    """Result of a greedy extension from (0, 0) forward."""

    q_consumed: int
    s_consumed: int
    matches: int
    differences: int
    score: int

    @property
    def identity(self) -> float:
        cols = self.matches + self.differences
        return self.matches / cols if cols else 0.0


def greedy_extend(query: np.ndarray, subject: np.ndarray,
                  match: int = 1, penalty: int = 3,
                  max_diff: int = 200,
                  xdrop: Optional[int] = None) -> GreedyExtension:
    """Greedily extend from (0, 0) forward (see module docstring).

    Returns the best-scoring endpoint found.  ``max_diff`` bounds the
    work (greedy shines when few differences are expected); ``xdrop``
    stops early once no frontier can recover the best score.
    """
    m, n = len(query), len(subject)
    if m == 0 or n == 0:
        return GreedyExtension(0, 0, 0, 0, 0)
    if xdrop is None:
        xdrop = 20 * (match + penalty)

    def snake(i: int, j: int) -> int:
        k = 0
        limit = min(m - i, n - j)
        while k < limit and query[i + k] == subject[j + k]:
            k += 1
        return k

    run0 = snake(0, 0)
    # Per diagonal k: (query reach i, matched bases so far).
    frontier: Dict[int, Tuple[int, int]] = {0: (run0, run0)}
    best = GreedyExtension(run0, run0, run0, 0, run0 * match)

    for d in range(1, max_diff + 1):
        new: Dict[int, Tuple[int, int]] = {}
        for k in range(-d, d + 1):
            candidates = []
            prev = frontier.get(k)
            if prev is not None:                      # mismatch
                i = prev[0] + 1
                if i <= m and i - k <= n and i - k >= 1:
                    candidates.append((i, prev[1]))
            prev = frontier.get(k - 1)
            if prev is not None:                      # gap in subject
                i = prev[0] + 1
                if i <= m and 0 <= i - k <= n:
                    candidates.append((i, prev[1]))
            prev = frontier.get(k + 1)
            if prev is not None:                      # gap in query
                i = prev[0]
                if i <= m and 0 <= i - k <= n:
                    candidates.append((i, prev[1]))
            if not candidates:
                continue
            i, matched = max(candidates)
            j = i - k
            if not (0 <= i <= m and 0 <= j <= n):
                continue
            run = snake(i, j)
            i += run
            j += run
            matched += run
            cur = new.get(k)
            if cur is None or (i, matched) > cur:
                new[k] = (i, matched)
                score = matched * match - d * penalty
                if score > best.score:
                    best = GreedyExtension(i, j, matched, d, score)
        if not new:
            break
        frontier = new
        # X-drop: the most optimistic continuation from the frontier
        # matches everything that remains.
        optimistic = max(
            (matched + min(m - i, n - (i - k))) * match - d * penalty
            for k, (i, matched) in frontier.items())
        if optimistic < best.score - xdrop:
            break
    return best


def megablast(query: str, db: SequenceDB,
              params: Optional[SearchParams] = None,
              scheme: Optional[ScoringScheme] = None,
              query_id: str = "query") -> SearchResults:
    """High-identity nucleotide search: blastn with megablast defaults
    (word size 28, heavier anchors, lighter extension settings) — how
    NCBI exposed it, on the shared pipeline."""
    from repro.blast.programs import blastn as _blastn

    if db.seqtype != NT:
        raise ValueError("megablast needs a nucleotide database")
    params = params or SearchParams(word_size=28, gapped_trigger=40,
                                    xdrop_ungapped=40, band=16)
    return _blastn(query, db, params=params, scheme=scheme,
                   query_id=query_id)
