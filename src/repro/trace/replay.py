"""Trace export and replay.

Collected application-level traces can be exported to CSV, re-imported,
and *replayed* against any simulated file system — turning a measured
workload into a portable benchmark driver (the methodology of the
paper's related work [24], which replays FLASH's checkpoint traces).
"""

from __future__ import annotations

import csv
import io
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.trace.record import TraceRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.parallel.ioadapters import WorkerIO

CSV_FIELDS = ["start", "end", "node", "op", "path", "size"]


def export_csv(records: Iterable[TraceRecord]) -> str:
    """Render records as CSV text."""
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=CSV_FIELDS)
    writer.writeheader()
    for r in records:
        writer.writerow({"start": r.start, "end": r.end, "node": r.node,
                         "op": r.op, "path": r.path, "size": r.size})
    return out.getvalue()


def import_csv(text: str) -> List[TraceRecord]:
    """Parse CSV text back into records."""
    records: List[TraceRecord] = []
    for row in csv.DictReader(io.StringIO(text)):
        records.append(TraceRecord(
            node=row["node"], op=row["op"], path=row["path"],
            size=int(row["size"]), start=float(row["start"]),
            end=float(row["end"])))
    return records


def replay(node: "Node", io_adapter: "WorkerIO",
           records: Iterable[TraceRecord],
           preserve_timing: bool = True,
           time_scale: float = 1.0):
    """Generator process: re-issue a trace's operations against
    *io_adapter*.

    With ``preserve_timing`` the replayer waits until each record's
    original (scaled) start time before issuing it — an open-loop
    replay; otherwise operations are issued back-to-back (closed-loop,
    measuring pure service capability).  Returns (ops, read bytes,
    written bytes).
    """
    sim = node.sim
    t0 = sim.now
    ops = reads = writes = 0
    # Make sure every file exists and is large enough first.
    needed: Dict[str, int] = {}
    recs = list(records)
    for r in recs:
        if r.op == "read":
            needed[r.path] = max(needed.get(r.path, 0), r.size)
    for path, size in needed.items():
        io_adapter.ensure_file(path, size)
    for r in recs:
        if preserve_timing:
            target = t0 + (r.start - recs[0].start) * time_scale
            if target > sim.now:
                yield sim.timeout(target - sim.now)
        if r.op == "read":
            yield from io_adapter.read(r.path, 0, r.size)
            reads += r.size
        elif r.op == "write":
            io_adapter.ensure_file(r.path, 0)
            yield from io_adapter.write(r.path, 0, r.size)
            writes += r.size
        else:  # pragma: no cover - defensive
            raise ValueError(f"cannot replay op {r.op!r}")
        ops += 1
    return ops, reads, writes
