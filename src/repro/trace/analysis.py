"""Trace statistics matching Section 4.2 of the paper.

For the 8-worker blastn run against the 8-fragment nt database the
paper reports, at the application level (master excluded):

* 144 I/O operations in total, 89 % of them reads;
* reads from 13 bytes to 220 MB, mean ≈ 10.5 MB (the text quotes the
  mean with its decimals truncated by the OCR; we take "large reads
  with mean in the tens-of-MB" as the target band);
* 16 writes of 50–778 bytes, mean ≈ 690 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.trace.record import TraceRecord


@dataclass(frozen=True)
class OpStats:
    """Summary of one operation class."""

    count: int
    total_bytes: int
    min_bytes: int
    max_bytes: int
    mean_bytes: float

    @staticmethod
    def of(sizes: List[int]) -> "OpStats":
        if not sizes:
            return OpStats(0, 0, 0, 0, 0.0)
        return OpStats(
            count=len(sizes),
            total_bytes=sum(sizes),
            min_bytes=min(sizes),
            max_bytes=max(sizes),
            mean_bytes=sum(sizes) / len(sizes),
        )


@dataclass(frozen=True)
class TraceStats:
    """Full Section 4.2-style summary."""

    operations: int
    reads: OpStats
    writes: OpStats

    @property
    def read_fraction(self) -> float:
        return self.reads.count / self.operations if self.operations else 0.0

    def report(self) -> str:
        r, w = self.reads, self.writes
        lines = [
            f"I/O operations: {self.operations} "
            f"({100 * self.read_fraction:.0f}% reads)",
            f"  reads : n={r.count} min={r.min_bytes}B max={r.max_bytes}B "
            f"mean={r.mean_bytes / 1e6:.2f}MB total={r.total_bytes / 1e6:.1f}MB",
            f"  writes: n={w.count} min={w.min_bytes}B max={w.max_bytes}B "
            f"mean={w.mean_bytes:.0f}B total={w.total_bytes}B",
        ]
        return "\n".join(lines)


def analyze(records: Iterable[TraceRecord]) -> TraceStats:
    """Compute :class:`TraceStats` over *records*."""
    reads: List[int] = []
    writes: List[int] = []
    for r in records:
        if r.op == "read":
            reads.append(r.size)
        elif r.op == "write":
            writes.append(r.size)
        else:
            raise ValueError(f"unknown op {r.op!r}")
    return TraceStats(
        operations=len(reads) + len(writes),
        reads=OpStats.of(reads),
        writes=OpStats.of(writes),
    )
