"""Trace collection.

The collector is handed to a file system as its ``tracer``; the FS calls
:meth:`TraceCollector.record` for every application-level operation.
Collection can be switched off (the paper turns instrumentation off for
timing runs to avoid perturbing the measurement — here it is free, but
the switch is kept for API fidelity and for pruning memory on long
runs).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.trace.record import TraceRecord


class TraceCollector:
    """Accumulates :class:`TraceRecord` objects."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: List[TraceRecord] = []

    # ------------------------------------------------------------------
    def record(self, node: str, op: str, path: str, size: int,
               start: float, end: float) -> None:
        if not self.enabled:
            return
        self.records.append(TraceRecord(node, op, path, size, start, end))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def clear(self) -> None:
        self.records.clear()

    # ------------------------------------------------------------------
    def filter(self, op: Optional[str] = None, node: Optional[str] = None,
               path_prefix: Optional[str] = None) -> List[TraceRecord]:
        out: Iterable[TraceRecord] = self.records
        if op is not None:
            out = (r for r in out if r.op == op)
        if node is not None:
            out = (r for r in out if r.node == node)
        if path_prefix is not None:
            out = (r for r in out if r.path.startswith(path_prefix))
        return list(out)

    def dump(self) -> str:
        """Text dump, one row per record (Figure 4 raw data)."""
        header = f"{'start':>12s} {'end':>12s} {'node':>8s} {'op':>5s} {'bytes':>12s} path"
        return "\n".join([header] + [r.as_row() for r in self.records])
