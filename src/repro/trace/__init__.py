"""Application-level I/O tracing.

Reproduces the instrumentation of Section 4.2 of the paper: every
application-level read/write is recorded with its node, size, and
simulated start/end times, and :mod:`repro.trace.analysis` computes the
summary statistics the paper quotes for Figure 4 (operation mix, size
ranges, means).
"""

from repro.trace.record import TraceRecord
from repro.trace.collector import TraceCollector
from repro.trace.analysis import TraceStats, analyze
from repro.trace.replay import export_csv, import_csv, replay

__all__ = ["TraceCollector", "TraceRecord", "TraceStats", "analyze",
           "export_csv", "import_csv", "replay"]
