"""A single I/O trace record."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TraceRecord:
    """One application-level I/O operation."""

    #: Node the operation ran on.
    node: str
    #: "read" or "write".
    op: str
    #: File path.
    path: str
    #: Bytes transferred.
    size: int
    #: Simulated start time (seconds).
    start: float
    #: Simulated completion time (seconds).
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_row(self) -> str:
        """Fixed-width text form for dumps."""
        return (f"{self.start:12.6f} {self.end:12.6f} {self.node:>8s} "
                f"{self.op:>5s} {self.size:>12d} {self.path}")
