"""Common file-system interface.

A simulated file system stores :class:`FileMeta` records (no payload
bytes — the simulation only needs sizes and placement).  Operations are
generators intended for ``yield from`` inside simulation processes; each
returns when the operation completes in simulated time.

An optional *tracer* (any object with an ``record`` method compatible
with :class:`repro.trace.TraceCollector`) observes application-level
operations, which is how the Figure 4 traces are collected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.trace.collector import TraceCollector


class FSError(Exception):
    """File-system level error (missing file, short read, ...)."""


class FileMeta:
    """Metadata for one file."""

    __slots__ = ("path", "size")

    def __init__(self, path: str, size: int = 0):
        self.path = path
        self.size = int(size)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FileMeta {self.path!r} size={self.size}>"


class FileSystem:
    """Base class: namespace handling + trace plumbing."""

    #: Human-readable scheme name ("local", "pvfs", "ceft-pvfs").
    scheme = "abstract"

    def __init__(self, tracer: Optional["TraceCollector"] = None):
        self._files: Dict[str, FileMeta] = {}
        self.tracer = tracer

    # ------------------------------------------------------------------
    # Namespace (instantaneous bookkeeping; the timed part of metadata
    # operations lives in subclasses).
    # ------------------------------------------------------------------
    def lookup(self, path: str) -> FileMeta:
        meta = self._files.get(path)
        if meta is None:
            raise FSError(f"{self.scheme}: no such file {path!r}")
        return meta

    def exists(self, path: str) -> bool:
        return path in self._files

    def _new_meta(self, path: str, size: int = 0, **kwargs) -> FileMeta:
        """Factory hook: subclasses return their richer metadata record
        (CEFT adds per-group residency) without re-implementing the
        check-then-create logic of :meth:`_create_meta`."""
        return FileMeta(path, size)

    def _create_meta(self, path: str, size: int = 0, **kwargs) -> FileMeta:
        if path in self._files:
            raise FSError(f"{self.scheme}: file exists {path!r}")
        meta = self._new_meta(path, size, **kwargs)
        self._files[path] = meta
        return meta

    def _unlink_meta(self, path: str) -> None:
        if path not in self._files:
            raise FSError(f"{self.scheme}: no such file {path!r}")
        del self._files[path]

    def list_files(self):
        return sorted(self._files)

    # ------------------------------------------------------------------
    def _check_range(self, meta: FileMeta, offset: int, size: int) -> None:
        if offset < 0 or size < 0:
            raise FSError(f"bad range offset={offset} size={size}")
        if offset + size > meta.size:
            raise FSError(
                f"{self.scheme}: read past EOF on {meta.path!r} "
                f"(offset={offset} size={size} file={meta.size})")

    def _trace(self, client: "Node", op: str, path: str, size: int,
               start: float, end: float) -> None:
        if self.tracer is not None:
            self.tracer.record(node=client.name, op=op, path=path,
                               size=size, start=start, end=end)

    # ------------------------------------------------------------------
    # Interface to be provided by subclasses (all generators):
    #   create(client, path, size=0)
    #   open(client, path) -> FileMeta
    #   read(client, path, offset, size)
    #   write(client, path, offset, size)
    # ------------------------------------------------------------------
