"""A single-server network file system (NFS-like).

mpiBLAST deployments of the paper's era staged the database on shared
NFS storage; each worker's first step was copying its fragments to the
local disk (the copy time the paper measures and subtracts).  This
model is one unstriped server: every byte flows through that node's
disk and NIC, which is exactly why concurrent copies serialise — and
why PVFS's striped bandwidth was worth building.

Implementation reuses :class:`repro.fs.dataserver.DataServer` with a
single server and identity layout (server-local offset == file offset).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.fs.dataserver import DataServer, ServerFailure
from repro.fs.interface import FileMeta, FileSystem, FSError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.trace.collector import TraceCollector

KiB = 1 << 10

#: NFS read/write transfer size (rsize/wsize of the era).
NFS_BLOCK = 32 * KiB


class NFS(FileSystem):
    """One NFS server exporting a shared namespace."""

    scheme = "nfs"

    def __init__(self, server_node: "Node",
                 tracer: Optional["TraceCollector"] = None,
                 block_size: int = NFS_BLOCK):
        super().__init__(tracer)
        self.sim = server_node.sim
        self.server = DataServer(self, server_node, 0, block_size)

    # ------------------------------------------------------------------
    def populate(self, path: str, size: int) -> FileMeta:
        if self.exists(path):
            meta = self.lookup(path)
            meta.size = size
            return meta
        return self._create_meta(path, size)

    def client(self, node: "Node") -> "NFSClient":
        return NFSClient(self, node)


class NFSClient:
    """A client mount of the shared file system."""

    def __init__(self, fs: NFS, node: "Node"):
        self.fs = fs
        self.node = node
        self.sim = fs.sim

    def read(self, path: str, offset: int, size: int):
        """Generator: remote read through the single server."""
        meta = self.fs.lookup(path)
        self.fs._check_range(meta, offset, size)
        start = self.sim.now
        if size > 0:
            try:
                yield self.sim.process(self.fs.server.serve_read(
                    self.node, path, [(0, offset, size)]))
            except ServerFailure as exc:
                raise FSError(f"nfs: server unavailable for {path!r}") from exc
        self.fs._trace(self.node, "read", path, size, start, self.sim.now)
        return size

    def write(self, path: str, offset: int, size: int):
        """Generator: remote write through the single server."""
        meta = self.fs.lookup(path)
        if offset < 0 or size < 0:
            raise FSError(f"bad range offset={offset} size={size}")
        start = self.sim.now
        if size > 0:
            try:
                yield self.sim.process(self.fs.server.serve_write(
                    self.node, path, [(0, offset, size)]))
            except ServerFailure as exc:
                raise FSError(f"nfs: server unavailable for {path!r}") from exc
        meta.size = max(meta.size, offset + size)
        self.fs._trace(self.node, "write", path, size, start, self.sim.now)
        return size

    def copy_to_local(self, local_fs, path: str, chunk: int = 1 << 20):
        """Generator: stream *path* from NFS onto this node's local disk
        — the original parallel BLAST's staging step.  Returns bytes
        copied."""
        meta = self.fs.lookup(path)
        local_fs.populate(path, 0)
        pos = 0
        while pos < meta.size:
            n = min(chunk, meta.size - pos)
            yield from self.read(path, pos, n)
            yield from local_fs.write(self.node, path, pos, n)
            pos += n
        return meta.size
