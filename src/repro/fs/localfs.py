"""Local (per-node) file system with page cache.

Models conventional I/O on a node's own IDE disk, the access scheme of
the original parallel BLAST: memory-mapped reads fault pages in
``readahead``-sized clusters (128 KB on Linux 2.4), writes are
synchronous appends/updates.

Reads consult the node's page cache: hit bytes cost memory bandwidth,
miss bytes cost disk requests at readahead granularity.  This is what
makes a warm second pass over a fragment nearly free — and what lets
the Figure 8 stressor (which bypasses its own cached data by synchronous
writing) destroy cold-read performance on the same spindle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.fs.interface import FileMeta, FileSystem, FSError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.trace.collector import TraceCollector


class LocalFS(FileSystem):
    """The file system on one node's local disk."""

    scheme = "local"

    def __init__(self, node: "Node", tracer: Optional["TraceCollector"] = None):
        super().__init__(tracer)
        self.node = node
        self.sim = node.sim

    # ------------------------------------------------------------------
    def create(self, client: "Node", path: str, size: int = 0):
        """Create *path* (instantaneous metadata; sized files represent
        pre-existing data, e.g. a copied-in database fragment)."""
        self._create_meta(path, size)
        return
        yield  # pragma: no cover - make this a generator

    def populate(self, path: str, size: int) -> FileMeta:
        """Non-timed helper: place a file of *size* bytes on disk
        (used to set up experiment preconditions)."""
        if self.exists(path):
            meta = self.lookup(path)
            meta.size = size
            return meta
        return self._create_meta(path, size)

    def open(self, client: "Node", path: str):
        """Open = a metadata lookup; negligible local cost."""
        meta = self.lookup(path)
        return meta
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    def read(self, client: "Node", path: str, offset: int, size: int):
        """Buffered/mmap read of ``[offset, offset+size)``."""
        meta = self.lookup(path)
        self._check_range(meta, offset, size)
        start = self.sim.now
        node = self.node
        mem = node.params.memory
        hit, miss = node.cache.lookup(path, offset, size)
        if hit:
            yield node.cpu.consume(hit / mem.cache_bandwidth)
        if miss:
            # Fault in the missing span at readahead granularity.  The
            # miss bytes are charged at the *tail* of the range so that
            # a sequential reader whose previous read already cached the
            # boundary page stays contiguous at the disk.
            chunk = mem.readahead
            remaining = miss
            pos = offset + hit
            while remaining > 0:
                length = min(chunk, remaining)
                yield node.disk.read(pos, length, stream=path)
                pos += length
                remaining -= length
            node.cache.insert(path, offset, size)
        self._trace(client, "read", path, size, start, self.sim.now)

    # ------------------------------------------------------------------
    def write(self, client: "Node", path: str, offset: int, size: int, sync: bool = True):
        """Write (synchronous by default, like BLAST's temp-result
        writes and the Figure 8 stressor)."""
        meta = self.lookup(path)
        if offset < 0 or size < 0:
            raise FSError(f"bad range offset={offset} size={size}")
        start = self.sim.now
        node = self.node
        if sync:
            yield node.disk.write(offset, size, stream=path)
        else:
            # Async write: dirty the cache; cost is a memory copy.
            yield node.cpu.consume(size / node.params.memory.cache_bandwidth)
        node.cache.insert(path, offset, size)
        meta.size = max(meta.size, offset + size)
        self._trace(client, "write", path, size, start, self.sim.now)

    # ------------------------------------------------------------------
    def truncate(self, client: "Node", path: str, size: int = 0):
        meta = self.lookup(path)
        meta.size = size
        self.node.cache.invalidate(path)
        return
        yield  # pragma: no cover

    def unlink(self, client: "Node", path: str):
        self._unlink_meta(path)
        self.node.cache.invalidate(path)
        return
        yield  # pragma: no cover
