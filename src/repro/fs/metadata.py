"""Metadata server shared by PVFS and CEFT-PVFS.

Every namespace operation (open/create/stat) is an RPC to this single
server: a small request message, some CPU, and a reply carrying the
striping information.  This round trip is part of why one-server PVFS
loses to local disk in the paper's Figure 5, and the slightly larger
CEFT metadata (mirror-group layout, load state) is why CEFT-PVFS trails
PVFS slightly in Figure 7.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.fs.interface import FileSystem

#: Request message size.
MD_REQUEST_SIZE = 128
#: Reply carrying stripe layout for one file.
MD_REPLY_SIZE = 512
#: CPU time per metadata operation on the server.
MD_CPU = 50e-6


class MetadataServer:
    """The (single) metadata server of a parallel file system."""

    def __init__(self, fs: "FileSystem", node: "Node",
                 reply_size: int = MD_REPLY_SIZE, op_cpu: float = MD_CPU):
        self.fs = fs
        self.node = node
        self.reply_size = reply_size
        self.op_cpu = op_cpu
        self.ops_served = 0

    def rpc(self, client: "Node"):
        """Generator: one metadata round trip from *client*."""
        net = self.node.network
        yield from net.transfer(client, self.node, MD_REQUEST_SIZE)
        yield self.node.cpu.consume(self.op_cpu)
        yield from net.transfer(self.node, client, self.reply_size)
        self.ops_served += 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MetadataServer on {self.node.name} ops={self.ops_served}>"
