"""PVFS: a RAID-0 style parallel virtual file system.

Files are striped round-robin (64 KB stripes by default, per Section 3
of the paper) across N data servers ("iods"); a single metadata server
hands out layouts.  Clients read/write all involved servers in parallel
through TCP over Myrinet.  There is no redundancy: every byte lives on
exactly one server, which is why PVFS cannot route around the hot-spot
node in the paper's Figure 9 experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.sim import AllOf
from repro.fs.dataserver import DataServer, ServerFailure
from repro.fs.interface import FileMeta, FileSystem, FSError
from repro.fs.metadata import MetadataServer
from repro.fs.striping import StripeLayout

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.trace.collector import TraceCollector

KiB = 1 << 10


class PVFS(FileSystem):
    """One PVFS deployment: a metadata server + N data servers."""

    scheme = "pvfs"

    def __init__(self, mds_node: "Node", data_nodes: List["Node"],
                 stripe_size: int = 64 * KiB,
                 tracer: Optional["TraceCollector"] = None,
                 server_cache: bool = True):
        if not data_nodes:
            raise ValueError("PVFS needs at least one data server")
        super().__init__(tracer)
        self.sim = mds_node.sim
        self.stripe_size = stripe_size
        self.mds = MetadataServer(self, mds_node)
        self.servers = [DataServer(self, node, i, stripe_size, server_cache)
                        for i, node in enumerate(data_nodes)]
        self.layout = StripeLayout(len(data_nodes), stripe_size)

    # ------------------------------------------------------------------
    @property
    def n_servers(self) -> int:
        return len(self.servers)

    def populate(self, path: str, size: int) -> FileMeta:
        """Non-timed setup helper: a file of *size* bytes already striped
        across the data servers."""
        if self.exists(path):
            meta = self.lookup(path)
            meta.size = size
            return meta
        return self._create_meta(path, size)

    def client(self, node: "Node") -> "PVFSClient":
        return PVFSClient(self, node)


class PVFSClient:
    """The client library linked into an application process."""

    def __init__(self, fs: PVFS, node: "Node"):
        self.fs = fs
        self.node = node
        self.sim = fs.sim
        self._layouts: Dict[str, StripeLayout] = {}

    # ------------------------------------------------------------------
    def open(self, path: str):
        """Generator: metadata round trip fetching the stripe layout."""
        meta = self.fs.lookup(path)  # raises before paying any cost
        yield from self.fs.mds.rpc(self.node)
        self._layouts[path] = self.fs.layout
        return meta

    def create(self, path: str, size: int = 0):
        """Generator: create a file (metadata op)."""
        meta = self.fs._create_meta(path, size)
        yield from self.fs.mds.rpc(self.node)
        self._layouts[path] = self.fs.layout
        return meta

    # ------------------------------------------------------------------
    def _ensure_open(self, path: str):
        if path not in self._layouts:
            yield from self.open(path)

    def read(self, path: str, offset: int, size: int):
        """Generator: parallel striped read.

        Dispatches one request per involved data server and completes
        when the slowest server has streamed its share.
        """
        meta = self.fs.lookup(path)
        self.fs._check_range(meta, offset, size)
        yield from self._ensure_open(path)
        start = self.sim.now
        if size > 0:
            per_server = self.fs.layout.extents(offset, size)
            procs = []
            for server, extents in zip(self.fs.servers, per_server):
                if not extents:
                    continue
                procs.append(self.sim.process(
                    server.serve_read(self.node, path, extents),
                    name=f"pvfs.read.s{server.index}"))
            try:
                if procs:
                    # AllOf fails fast on the first ServerFailure and
                    # cancels the sibling stripe reads, so the surviving
                    # servers stop streaming data nobody will consume.
                    served = yield AllOf(self.sim, procs)
                    self.sim.check.bytes_conserved(
                        "pvfs.read", path, size, sum(served))
            except ServerFailure as exc:
                # No redundancy: one dead server takes the whole file
                # system down (paper Section 1).
                raise FSError(
                    f"pvfs: data server {exc.index} failed; "
                    f"{path!r} is unavailable") from exc
            finally:
                for p in procs:  # belt and braces: no-op if finished
                    p.cancel()
        self.fs._trace(self.node, "read", path, size, start, self.sim.now)
        return size

    def write(self, path: str, offset: int, size: int, sync: bool = True):
        """Generator: parallel striped write."""
        meta = self.fs.lookup(path)
        if offset < 0 or size < 0:
            raise FSError(f"bad range offset={offset} size={size}")
        yield from self._ensure_open(path)
        start = self.sim.now
        if size > 0:
            per_server = self.fs.layout.extents(offset, size)
            procs = []
            for server, extents in zip(self.fs.servers, per_server):
                if not extents:
                    continue
                procs.append(self.sim.process(
                    server.serve_write(self.node, path, extents, sync=sync),
                    name=f"pvfs.write.s{server.index}"))
            try:
                if procs:
                    stored = yield AllOf(self.sim, procs)
                    self.sim.check.bytes_conserved(
                        "pvfs.write", path, size, sum(stored))
            except ServerFailure as exc:
                raise FSError(
                    f"pvfs: data server {exc.index} failed; "
                    f"{path!r} is unavailable") from exc
            finally:
                for p in procs:
                    p.cancel()
        meta.size = max(meta.size, offset + size)
        self.fs._trace(self.node, "write", path, size, start, self.sim.now)
        return size

    def truncate(self, path: str, size: int = 0):
        """Generator: truncate a file (metadata op; servers drop their
        stripes lazily)."""
        meta = self.fs.lookup(path)
        yield from self.fs.mds.rpc(self.node)
        meta.size = size
        for server in self.fs.servers:
            server.node.cache.invalidate(f"{path}#s{server.index}")
        return meta

    def unlink(self, path: str):
        """Generator: remove a file from the namespace."""
        self.fs.lookup(path)
        yield from self.fs.mds.rpc(self.node)
        self.fs._unlink_meta(path)
        self._layouts.pop(path, None)
        for server in self.fs.servers:
            server.node.cache.invalidate(f"{path}#s{server.index}")
