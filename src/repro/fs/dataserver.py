"""Data-server request service shared by PVFS I/O daemons and CEFT-PVFS
storage servers.

A read of a per-server extent is a two-stage pipeline: the disk is read
in stripe-unit chunks into a bounded buffer while previously-read chunks
stream to the client over TCP.  Disk time and wire time therefore
overlap, as they do in the real servers.  The *disk request granularity*
is the stripe unit (64 KB) — the detail that, under the Figure 8
stressor, makes striped reads starve harder than the original BLAST's
128 KB readahead clusters (see :mod:`repro.cluster.disk`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Tuple

from repro.sim import AllOf, Simulator, Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.fs.interface import FileSystem

#: Size of a read/write request message on the wire.
REQUEST_SIZE = 256
#: Size of a reply/ack message.
ACK_SIZE = 64
#: Server CPU time to parse and set up one request.
REQUEST_CPU = 100e-6
#: Stripe units buffered between disk and network stages.
PIPELINE_DEPTH = 4
#: How long a client waits on a dead server before declaring it failed.
RPC_TIMEOUT = 2.0


class ServerFailure(Exception):
    """A data server did not respond (crashed node).

    Carries the (server index, path) so redundancy-aware callers
    (CEFT-PVFS) can reroute; PVFS has no second copy and must surface
    the error to the application — "the failure of any single cluster
    node renders the entire file system service unavailable" (paper
    Section 1).
    """

    def __init__(self, index: int, path: str = ""):
        super().__init__(f"data server {index} failed (path {path!r})")
        self.index = index
        self.path = path


class DataServer:
    """One storage server process (PVFS "iod" or CEFT data server)."""

    def __init__(self, fs: "FileSystem", node: "Node", index: int,
                 unit_size: int, use_cache: bool = True):
        self.fs = fs
        self.node = node
        self.index = index
        self.unit_size = int(unit_size)
        self.use_cache = use_cache
        self.sim: Simulator = node.sim
        self.alive = True
        self.bytes_served = 0
        self.bytes_stored = 0
        self.requests_served = 0

    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash the server (requests time out until :meth:`recover`)."""
        self.alive = False

    def recover(self) -> None:
        """Bring the server process back (its data must be resynced by
        the file-system layer before it serves reads again)."""
        self.alive = True

    def _check_alive(self, path: str):
        """Generator: model the client-side RPC timeout on a dead server."""
        if not self.alive:
            from repro.sim import Timeout

            yield Timeout(self.sim, RPC_TIMEOUT)
            raise ServerFailure(self.index, path)

    # ------------------------------------------------------------------
    def _stream_id(self, path: str) -> str:
        # One sequential-detection stream per (file, server): successive
        # extent reads of the same file on this server are contiguous.
        return f"{path}#s{self.index}"

    def _units(self, extents: Iterable[Tuple[int, int, int]]):
        """Chop per-server extents into stripe-unit disk requests."""
        for _server, soff, length in extents:
            pos = soff
            end = soff + length
            while pos < end:
                size = min(self.unit_size, end - pos)
                yield pos, size
                pos += size

    # ------------------------------------------------------------------
    def serve_read(self, client: "Node", path: str,
                   extents: List[Tuple[int, int, int]]):
        """Process: handle one read request from *client*.

        Wire protocol: request message in, then the extent data streamed
        back chunk by chunk.  Returns total bytes served.
        """
        net = self.node.network
        yield from self._check_alive(path)
        # Request message travels client -> server, then server CPU.
        yield from net.transfer(client, self.node, REQUEST_SIZE)
        yield self.node.cpu.consume(REQUEST_CPU)

        total = sum(e[2] for e in extents)
        if total == 0:
            yield from net.transfer(self.node, client, ACK_SIZE)
            return 0

        buf = Store(self.sim, capacity=PIPELINE_DEPTH)
        stream = self._stream_id(path)
        mem = self.node.params.memory

        def reader():
            page = mem.page_size
            cache = self.node.cache
            for pos, size in self._units(extents):
                if self.use_cache:
                    hit, miss = cache.lookup(stream, pos, size)
                else:
                    hit, miss = 0, size
                if miss == 0:
                    yield self.node.cpu.consume(hit / mem.cache_bandwidth)
                else:
                    # Disk I/O is page-granular (the OS fetches whole
                    # pages), but never re-reads cached leading pages:
                    # start at the first missing page so sequential
                    # streams stay contiguous at the disk.
                    first_page = pos // page
                    last_page = (pos + size - 1) // page
                    if self.use_cache:
                        while (first_page <= last_page and cache.contains(
                                stream, first_page * page, 1)):
                            first_page += 1
                    lo = first_page * page
                    hi = (last_page + 1) * page
                    yield self.node.disk.read(lo, hi - lo, stream=stream)
                    if self.use_cache:
                        cache.insert(stream, lo, hi - lo)
                yield buf.put(size)
            yield buf.put(None)

        def sender():
            sent = 0
            while True:
                item = yield buf.get()
                if item is None:
                    return sent
                yield from net.transfer(self.node, client, item)
                sent += item

        rp = self.sim.process(reader(), name=f"iod{self.index}.read")
        sp = self.sim.process(sender(), name=f"iod{self.index}.send")
        try:
            yield AllOf(self.sim, [rp, sp])
        finally:
            # If this request is abandoned (client cancelled, sibling
            # server failed), reap both pipeline stages so no reader
            # keeps issuing disk requests for a dead transfer.  No-op
            # on the normal path: both have finished.
            rp.cancel()
            sp.cancel()
        self.bytes_served += total
        self.requests_served += 1
        return total

    # ------------------------------------------------------------------
    def serve_write(self, client: "Node", path: str,
                    extents: List[Tuple[int, int, int]], sync: bool = True):
        """Process: handle one write request from *client*.

        The client streams data in; the server writes it out in stripe
        units (synchronously unless *sync* is false) and finally acks.
        """
        net = self.node.network
        yield from self._check_alive(path)
        yield from net.transfer(client, self.node, REQUEST_SIZE)
        yield self.node.cpu.consume(REQUEST_CPU)
        total = sum(e[2] for e in extents)
        stream = self._stream_id(path)
        mem = self.node.params.memory
        for pos, size in self._units(extents):
            yield from net.transfer(client, self.node, size)
            if sync:
                yield self.node.disk.write(pos, size, stream=stream)
            else:
                yield self.node.cpu.consume(size / mem.cache_bandwidth)
            if self.use_cache:
                self.node.cache.insert(stream, pos, size)
        yield from net.transfer(self.node, client, ACK_SIZE)
        self.bytes_stored += total
        self.requests_served += 1
        return total

    # ------------------------------------------------------------------
    def store_local(self, client: "Node", path: str,
                    extents: List[Tuple[int, int, int]], sync: bool = True):
        """Process: write extent data that is *already on this node*
        (server-to-server mirroring forwards use this with the data
        source being the primary server)."""
        stream = self._stream_id(path)
        for pos, size in self._units(extents):
            if sync:
                yield self.node.disk.write(pos, size, stream=stream)
            else:
                yield self.node.cpu.consume(
                    size / self.node.params.memory.cache_bandwidth)
            if self.use_cache:
                self.node.cache.insert(stream, pos, size)
        return sum(e[2] for e in extents)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DataServer {self.index} on {self.node.name}>"
