"""Simulated file systems: local disk FS, PVFS, and CEFT-PVFS.

All three expose the same coroutine-style API (:class:`FileSystem`):
``open``/``create``/``read``/``write`` generators that a simulation
process drives with ``yield from``.  Files carry metadata only (sizes
and layouts); actual sequence bytes live in :mod:`repro.blast`, which
is a real, non-simulated library.
"""

from repro.fs.interface import FileMeta, FileSystem, FSError
from repro.fs.localfs import LocalFS
from repro.fs.striping import StripeLayout
from repro.fs.pvfs import PVFS, PVFSClient
from repro.fs.ceft import CEFT, CEFTClient

__all__ = [
    "CEFT",
    "CEFTClient",
    "FileMeta",
    "FileSystem",
    "FSError",
    "LocalFS",
    "PVFS",
    "PVFSClient",
    "StripeLayout",
]
