"""Round-robin stripe layout arithmetic (RAID-0 / PVFS style).

A file is cut into ``stripe_size`` units distributed round-robin over
``n_servers``: unit *u* lives on server ``u % n_servers`` at server-local
offset ``(u // n_servers) * stripe_size``.  The paper's implementations
fix ``stripe_size`` at 64 KB (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

KiB = 1 << 10

#: (server index, offset on that server, length) of one contiguous extent.
Extent = Tuple[int, int, int]


@dataclass(frozen=True)
class StripeLayout:
    """Immutable striping description for one file."""

    n_servers: int
    stripe_size: int = 64 * KiB

    def __post_init__(self):
        if self.n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if self.stripe_size < 1:
            raise ValueError("stripe_size must be >= 1")

    # ------------------------------------------------------------------
    def server_of(self, offset: int) -> int:
        """Which server stores the byte at *offset*."""
        return (offset // self.stripe_size) % self.n_servers

    def server_offset(self, offset: int) -> int:
        """Local offset of file byte *offset* on its server."""
        unit = offset // self.stripe_size
        return (unit // self.n_servers) * self.stripe_size + offset % self.stripe_size

    # ------------------------------------------------------------------
    def units(self, offset: int, size: int) -> Iterator[Tuple[int, int, int, int]]:
        """Yield (server, server_offset, length, file_offset) for every
        stripe-unit-aligned piece of the byte range."""
        if offset < 0 or size < 0:
            raise ValueError("offset and size must be >= 0")
        pos = offset
        end = offset + size
        while pos < end:
            unit_end = (pos // self.stripe_size + 1) * self.stripe_size
            length = min(end, unit_end) - pos
            yield (self.server_of(pos), self.server_offset(pos), length, pos)
            pos += length

    # ------------------------------------------------------------------
    def extents(self, offset: int, size: int) -> List[List[Extent]]:
        """Partition a byte range into per-server extents.

        Returns a list indexed by server; each entry is a list of
        (server, server_offset, length) extents with adjacent units on
        the same server merged (they are contiguous in server-local
        space for a dense range).
        """
        per_server: List[List[Extent]] = [[] for _ in range(self.n_servers)]
        for server, soff, length, _ in self.units(offset, size):
            bucket = per_server[server]
            if bucket and bucket[-1][1] + bucket[-1][2] == soff:
                last = bucket[-1]
                bucket[-1] = (server, last[1], last[2] + length)
            else:
                bucket.append((server, soff, length))
        return per_server

    def server_bytes(self, offset: int, size: int) -> List[int]:
        """Bytes of the range stored on each server."""
        totals = [0] * self.n_servers
        for server, _, length, _ in self.units(offset, size):
            totals[server] += length
        return totals

    def local_size(self, file_size: int, server: int) -> int:
        """Bytes of a ``file_size``-byte file stored on *server*."""
        full_cycles, rem = divmod(file_size, self.stripe_size * self.n_servers)
        size = full_cycles * self.stripe_size
        rem_units, tail = divmod(rem, self.stripe_size)
        if server < rem_units:
            size += self.stripe_size
        elif server == rem_units:
            size += tail
        return size
