"""CEFT-PVFS: a cost-effective, fault-tolerant (RAID-10) parallel
virtual file system.

Extends PVFS with a mirror group: data is striped across a *primary*
group of G servers and duplicated onto a *mirror* group of G servers
(Section 3 of the paper; details in the authors' companion papers
[5][6][7]).  Two read optimisations are reproduced:

1. **Doubled parallelism** (Section 4.4, ref [6]): when the data is
   resident on both groups, a read fetches its first half from one group
   and its second half from the other, involving all 2G servers.
2. **Hot-spot skipping** (Section 4.5): the metadata server periodically
   collects disk-utilisation from every data server; clients reroute
   stripe units whose home server is flagged hot to the mirror of that
   server.  This works for multi-node hot spots as long as no mirroring
   *pair* is entirely hot.

Write duplexing supports the four protocols studied in the companion
scheduling paper (ref [7]).
"""

from __future__ import annotations

import enum
import statistics
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.sim import AllOf, Timeout
from repro.fs.dataserver import DataServer, ServerFailure
from repro.fs.interface import FileMeta, FileSystem, FSError
from repro.fs.metadata import MetadataServer
from repro.fs.striping import StripeLayout

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.trace.collector import TraceCollector

KiB = 1 << 10

PRIMARY = 0
MIRROR = 1

#: Extra client CPU per striped operation: CEFT's client library does
#: more bookkeeping (two groups, residency, hot set) than PVFS's.
CLIENT_SCHED_CPU = 200e-6
#: Heartbeat request/response sizes for load collection.
HB_SIZE = 64
#: Notification message pushed to each client when the hot set changes.
NOTIFY_SIZE = 128
#: Failover bound: a read range is re-issued at most this many times
#: before the client gives up.  One round reaches the mirror of every
#: failed pair; the second absorbs a mirror dying mid-failover; a third
#: round would mean both copies of some pair vanished, which the
#: residency checks already turn into an :class:`FSError`.
MAX_RETRY_ROUNDS = 3


class WriteProtocol(enum.Enum):
    """Duplexing protocols from the companion paper (ref [7])."""

    #: Client writes primaries; each primary forwards to its mirror;
    #: ack after both copies are on disk.
    SERVER_SYNC = "server-sync"
    #: Ack after the primary copy; forwarding happens in the background.
    SERVER_ASYNC = "server-async"
    #: Client writes both groups itself; ack after both.
    CLIENT_SYNC = "client-sync"
    #: Client writes both groups; ack after the primary group only.
    CLIENT_ASYNC = "client-async"


class _CEFTFile(FileMeta):
    """File metadata plus per-group residency."""

    __slots__ = ("resident",)

    def __init__(self, path: str, size: int = 0, mirrored: bool = True):
        super().__init__(path, size)
        #: Whether each group holds a complete, current copy.
        self.resident = {PRIMARY: True, MIRROR: bool(mirrored)}

    @property
    def mirrored(self) -> bool:
        """True when both groups hold a current copy."""
        return self.resident[PRIMARY] and self.resident[MIRROR]

    @mirrored.setter
    def mirrored(self, value: bool) -> None:
        self.resident[MIRROR] = bool(value)
        if value:
            self.resident[PRIMARY] = True


class LoadCollector:
    """The metadata server's periodic load-collection duty.

    Every ``period`` seconds it polls each data server's disk
    utilisation and recomputes the hot set: servers whose utilisation
    exceeds ``hot_threshold`` *and* ``hot_factor`` times the cluster
    median.  Hysteresis: a flagged server is cleared only when its
    utilisation drops below ``clear_threshold``.
    """

    def __init__(self, fs: "CEFT", period: float = 5.0,
                 hot_threshold: float = 0.85, hot_factor: float = 2.0,
                 clear_threshold: float = 0.5):
        self.fs = fs
        self.period = period
        self.hot_threshold = hot_threshold
        self.hot_factor = hot_factor
        self.clear_threshold = clear_threshold
        self.enabled = True
        self.samples = 0
        #: Hot flags as (group, index) pairs.
        self.hot: Set[Tuple[int, int]] = set()

    def stop(self) -> None:
        self.enabled = False

    def recompute_hot(self, utils: Dict[Tuple[int, int], float]
                      ) -> Set[Tuple[int, int]]:
        """Apply one round of samples; returns the new hot set.

        A server is compared against the median utilisation of the
        *other* servers: including the candidate itself would let a
        single hot server drag the median up and mask its own spike —
        with four servers (group_size=2) one server at 90% pushes the
        median past ``util / hot_factor`` and is never flagged.
        """
        new_hot = set(self.hot)
        for key, util in utils.items():
            if key in new_hot:
                if util < self.clear_threshold:
                    new_hot.discard(key)
                continue
            others = [u for k, u in utils.items() if k != key]
            baseline = statistics.median(others) if others else 0.0
            if util > self.hot_threshold and util > self.hot_factor * baseline:
                new_hot.add(key)
        return new_hot

    def run(self):
        """Simulation process (spawned by :class:`CEFT`)."""
        fs = self.fs
        mds = fs.mds.node
        net = mds.network
        all_servers = [(PRIMARY, s) for s in fs.primary] + [(MIRROR, s) for s in fs.mirror]
        while self.enabled:
            yield Timeout(fs.sim, self.period)
            if not self.enabled:
                return
            utils = {}
            for group, server in all_servers:
                if not server.alive:
                    # Heartbeat unanswered: declare the server failed so
                    # clients stop routing to it before timing out.
                    if not fs.is_failed(group, server.index):
                        fs.mark_failed(group, server.index)
                        for client in fs.clients:
                            yield from net.transfer(mds, client.node,
                                                    NOTIFY_SIZE)
                    continue
                yield from net.transfer(mds, server.node, HB_SIZE)
                util = server.node.disk.sample_utilization()
                yield from net.transfer(server.node, mds, HB_SIZE)
                utils[(group, server.index)] = util
            if not utils:
                continue
            self.samples += 1
            new_hot = self.recompute_hot(utils)
            if new_hot != self.hot:
                self.hot = new_hot
                for client in fs.clients:
                    yield from net.transfer(mds, client.node, NOTIFY_SIZE)


class CEFT(FileSystem):
    """One CEFT-PVFS deployment."""

    scheme = "ceft-pvfs"

    def __init__(self, mds_node: "Node", primary_nodes: List["Node"],
                 mirror_nodes: List["Node"], stripe_size: int = 64 * KiB,
                 tracer: Optional["TraceCollector"] = None,
                 server_cache: bool = True,
                 protocol: WriteProtocol = WriteProtocol.CLIENT_ASYNC,
                 double_parallelism: bool = True,
                 skip_hot: bool = True,
                 load_period: float = 5.0,
                 monitor_load: bool = True):
        if not primary_nodes:
            raise ValueError("CEFT needs at least one primary server")
        if len(primary_nodes) != len(mirror_nodes):
            raise ValueError("primary and mirror groups must be the same size")
        super().__init__(tracer)
        self.sim = mds_node.sim
        self.stripe_size = stripe_size
        # CEFT metadata is a bit heavier than PVFS's (two layouts plus
        # residency and load state) — the cause of the slight deficit
        # the paper sees in Figure 7.
        self.mds = MetadataServer(self, mds_node, reply_size=768, op_cpu=70e-6)
        self.primary = [DataServer(self, n, i, stripe_size, server_cache)
                        for i, n in enumerate(primary_nodes)]
        self.mirror = [DataServer(self, n, i, stripe_size, server_cache)
                       for i, n in enumerate(mirror_nodes)]
        self.layout = StripeLayout(len(primary_nodes), stripe_size)
        self.protocol = protocol
        self.double_parallelism = double_parallelism
        self.skip_hot = skip_hot
        self.failed_servers: Set[Tuple[int, int]] = set()
        self.clients: List["CEFTClient"] = []
        self.collector = LoadCollector(self, period=load_period)
        self._collector_proc = None
        if monitor_load:
            self._collector_proc = self.sim.process(
                self.collector.run(), name="ceft.loadcollector", daemon=True)

    # ------------------------------------------------------------------
    @property
    def group_size(self) -> int:
        return len(self.primary)

    @property
    def n_servers(self) -> int:
        return 2 * len(self.primary)

    def stop_monitoring(self) -> None:
        self.collector.stop()

    def group(self, which: int) -> List[DataServer]:
        return self.primary if which == PRIMARY else self.mirror

    def is_hot(self, group: int, index: int) -> bool:
        return (group, index) in self.collector.hot

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------
    def mark_failed(self, group: int, index: int) -> None:
        self.failed_servers.add((group, index))

    def is_failed(self, group: int, index: int) -> bool:
        return (group, index) in self.failed_servers

    def fail_server(self, group: int, index: int) -> None:
        """Crash one data server (failure injection)."""
        self.group(group)[index].fail()

    def _avoid(self, group: int, index: int) -> bool:
        """Should routing avoid this server (hot or known-failed)?"""
        return self.is_failed(group, index) or (
            self.skip_hot and self.is_hot(group, index))

    def resync(self, group: int, index: int):
        """Process: recover a failed server by copying its share of
        every file back from the mirror of the pair.

        This is the RAID-10 rebuild of the companion papers: the pair's
        healthy server streams the recovering server's local data over
        the network, and the recovering server writes it to disk.
        Returns the number of bytes resynced.
        """
        target = self.group(group)[index]
        other = MIRROR if group == PRIMARY else PRIMARY
        source = self.group(other)[index]
        if not source.alive or self.is_failed(other, index):
            raise FSError("cannot resync: the pair's other copy is down")
        target.recover()
        total = 0
        net = target.node.network
        for path in self.list_files():
            meta = self.lookup(path)
            if not meta.resident[other]:
                continue
            nbytes = self.layout.local_size(meta.size, index)
            if nbytes == 0:
                continue
            yield from net.transfer(source.node, target.node, nbytes)
            yield self.sim.process(target.store_local(
                target.node, path, [(index, 0, nbytes)]))
            total += nbytes
        self.failed_servers.discard((group, index))
        # Every mirrored file is whole again on this group.
        return total

    # ------------------------------------------------------------------
    def _new_meta(self, path: str, size: int = 0,
                  mirrored: bool = True) -> _CEFTFile:
        return _CEFTFile(path, size, mirrored)

    def populate(self, path: str, size: int, mirrored: bool = True) -> _CEFTFile:
        if self.exists(path):
            meta = self.lookup(path)
            meta.size = size
            meta.mirrored = mirrored
            return meta
        return self._create_meta(path, size, mirrored=mirrored)

    def client(self, node: "Node") -> "CEFTClient":
        c = CEFTClient(self, node)
        self.clients.append(c)
        return c


class CEFTClient:
    """Client library for CEFT-PVFS."""

    def __init__(self, fs: CEFT, node: "Node"):
        self.fs = fs
        self.node = node
        self.sim = fs.sim
        self._opened: Set[str] = set()

    # ------------------------------------------------------------------
    def open(self, path: str):
        meta = self.fs.lookup(path)
        yield from self.fs.mds.rpc(self.node)
        self._opened.add(path)
        return meta

    def create(self, path: str, size: int = 0, mirrored: bool = False):
        # Same check-then-create helper as PVFS: a duplicate create
        # raises before the metadata RPC is paid, on both schemes.
        meta = self.fs._create_meta(path, size, mirrored=mirrored)
        yield from self.fs.mds.rpc(self.node)
        self._opened.add(path)
        return meta

    def _ensure_open(self, path: str):
        if path not in self._opened:
            yield from self.open(path)

    # ------------------------------------------------------------------
    # Read scheduling
    # ------------------------------------------------------------------
    def _route(self, meta: _CEFTFile, offset: int, size: int
               ) -> Dict[Tuple[int, int], List[Tuple[int, int, int]]]:
        """Assign each stripe unit of the range to a (group, server).

        Implements doubled parallelism (first half from one group,
        second half from the other) and hot-spot skipping (a unit whose
        home server is hot is reread from the mirror of the pair, unless
        that one is hot too).  Returns merged extents per (group, index).
        """
        fs = self.fs
        layout = fs.layout
        use_both = fs.double_parallelism and meta.mirrored
        if use_both:
            # Split at a stripe-aligned midpoint.
            mid = offset + size // 2
            mid -= mid % layout.stripe_size
            mid = min(max(mid, offset), offset + size)
        elif meta.resident[PRIMARY]:
            mid = offset + size  # everything from the primary group
        elif meta.resident[MIRROR]:
            mid = offset        # everything from the mirror group
        else:
            raise FSError(f"{meta.path!r}: no current copy in either group")

        routed: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = {}
        for server, soff, length, fpos in layout.units(offset, size):
            group = PRIMARY if fpos < mid else MIRROR
            other = MIRROR if group == PRIMARY else PRIMARY
            # Reroute away from hot or failed servers when the pair's
            # other copy is usable.
            if (fs._avoid(group, server) and meta.resident[other]
                    and not fs._avoid(other, server)):
                group = other
            key = (group, server)
            bucket = routed.setdefault(key, [])
            if bucket and bucket[-1][1] + bucket[-1][2] == soff:
                last = bucket[-1]
                bucket[-1] = (server, last[1], last[2] + length)
            else:
                bucket.append((server, soff, length))
        return routed

    def read(self, path: str, offset: int, size: int):
        """Generator: parallel mirrored read with failover.

        If a data server dies mid-read (RPC timeout), the client reports
        it to the metadata state and re-issues that server's extents to
        the mirror of the pair — the fault-tolerance mechanism PVFS
        lacks.  Only if *both* copies of a pair are unavailable does the
        read fail.
        """
        meta = self.fs.lookup(path)
        self.fs._check_range(meta, offset, size)
        yield from self._ensure_open(path)
        start = self.sim.now
        if size > 0:
            yield self.node.cpu.consume(CLIENT_SCHED_CPU)
            pending = self._route(meta, offset, size)
            rounds = 0
            served = 0
            while pending:
                rounds += 1
                if rounds > MAX_RETRY_ROUNDS:
                    raise FSError(
                        f"read of {path!r} still failing after "
                        f"{MAX_RETRY_ROUNDS} failover rounds")
                procs = {
                    key: self.sim.process(
                        self.fs.group(key[0])[key[1]].serve_read(
                            self.node, path, extents),
                        name=f"ceft.read.g{key[0]}s{key[1]}")
                    for key, extents in pending.items()
                }
                retry: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = {}
                try:
                    for key, proc in procs.items():
                        try:
                            served += yield proc
                        except ServerFailure:
                            group, index = key
                            self.fs.mark_failed(group, index)
                            other = MIRROR if group == PRIMARY else PRIMARY
                            if (not meta.resident[other]
                                    or self.fs.is_failed(other, index)
                                    or not self.fs.group(other)[index].alive):
                                raise FSError(
                                    f"pair {index}: both copies unavailable "
                                    f"for {path!r}")
                            retry.setdefault((other, index), []).extend(
                                pending[key])
                finally:
                    # Fatal exit (both copies gone, retry bound hit, or
                    # this client cancelled): reap the per-server reads
                    # still streaming, so the failure leaves no orphan
                    # pinning disk and NIC time.  No-op when the round
                    # completed: every proc has finished.
                    for proc in procs.values():
                        proc.cancel()
                pending = retry
            # A server failure is all-or-nothing per request (extents
            # that failed were re-issued whole), so completed requests
            # must add up to exactly the range read.
            self.sim.check.bytes_conserved("ceft.read", path, size, served)
        self.fs._trace(self.node, "read", path, size, start, self.sim.now)
        return size

    # ------------------------------------------------------------------
    # Write duplexing
    # ------------------------------------------------------------------
    def write(self, path: str, offset: int, size: int):
        """Generator: duplexed write per the configured protocol."""
        meta = self.fs.lookup(path)
        if offset < 0 or size < 0:
            raise FSError(f"bad range offset={offset} size={size}")
        yield from self._ensure_open(path)
        start = self.sim.now
        fs = self.fs
        proto = fs.protocol
        if size > 0:
            yield self.node.cpu.consume(CLIENT_SCHED_CPU)
            per_server = fs.layout.extents(offset, size)

            def group_writes(group: int):
                procs = []
                for server, extents in zip(fs.group(group), per_server):
                    if not extents:
                        continue
                    procs.append((group, server.index, self.sim.process(
                        server.serve_write(self.node, path, extents),
                        name=f"ceft.write.g{group}s{server.index}")))
                return procs

            def forward(pserver: DataServer, mserver: DataServer, extents):
                """Primary streams its share to the mirror, which stores it."""
                total = sum(e[2] for e in extents)
                yield from pserver.node.network.transfer(
                    pserver.node, mserver.node, total)
                yield self.sim.process(
                    mserver.store_local(self.node, path, extents))

            def wait_group(tagged):
                """Wait all of a group's procs; returns (all succeeded,
                bytes stored by the ones that did)."""
                ok, stored = True, 0
                for group, index, proc in tagged:
                    try:
                        stored += yield proc
                    except ServerFailure:
                        fs.mark_failed(group, index)
                        ok = False
                return ok, stored

            check = self.sim.check
            if proto in (WriteProtocol.CLIENT_SYNC, WriteProtocol.CLIENT_ASYNC):
                pprocs = group_writes(PRIMARY)
                mprocs = group_writes(MIRROR)
                p_ok, p_stored = yield from wait_group(pprocs)
                if p_ok:
                    check.bytes_conserved("ceft.write.primary", path,
                                          size, p_stored)
                if proto is WriteProtocol.CLIENT_SYNC or not p_ok:
                    m_ok, m_stored = yield from wait_group(mprocs)
                    if m_ok:
                        check.bytes_conserved("ceft.write.mirror", path,
                                              size, m_stored)
                else:
                    m_ok = True  # mirror completes in the background
                if not p_ok and not m_ok:
                    raise FSError(f"write to {path!r} lost both copies")
                if not p_ok:
                    meta.resident[PRIMARY] = False
                if not m_ok:
                    meta.resident[MIRROR] = False
            else:
                pprocs = group_writes(PRIMARY)
                p_ok, p_stored = yield from wait_group(pprocs)
                if p_ok:
                    check.bytes_conserved("ceft.write.primary", path,
                                          size, p_stored)
                if not p_ok:
                    # Server-push protocols route everything through the
                    # primaries; a dead primary fails the write.
                    raise FSError(f"write to {path!r}: primary server down")
                fprocs = [
                    self.sim.process(forward(fs.primary[i], fs.mirror[i], extents))
                    for i, extents in enumerate(per_server) if extents
                ]
                if proto is WriteProtocol.SERVER_SYNC:
                    yield AllOf(self.sim, fprocs)
        meta.size = max(meta.size, offset + size)
        fs._trace(self.node, "write", path, size, start, self.sim.now)
        return size

    def truncate(self, path: str, size: int = 0):
        """Generator: truncate (metadata op, both groups affected)."""
        meta = self.fs.lookup(path)
        yield from self.fs.mds.rpc(self.node)
        meta.size = size
        for group in (self.fs.primary, self.fs.mirror):
            for server in group:
                server.node.cache.invalidate(f"{path}#s{server.index}")
        return meta

    def unlink(self, path: str):
        """Generator: remove a file from both groups' namespace."""
        self.fs.lookup(path)
        yield from self.fs.mds.rpc(self.node)
        self.fs._unlink_meta(path)
        self._opened.discard(path)
        for group in (self.fs.primary, self.fs.mirror):
            for server in group:
                server.node.cache.invalidate(f"{path}#s{server.index}")
