"""Command-line interface.

Mirrors the tools of the paper's era plus the experiment layer::

    python -m repro.cli formatdb  -i seqs.fasta -d DIR -n nt [-p]
    python -m repro.cli blastall  -p blastn -d DIR/nt -i query.fasta
    python -m repro.cli packdb    build -i seqs.fasta -o PACKDIR
    python -m repro.cli blastall  -p blastn --db-pack PACKDIR -i query.fasta
    python -m repro.cli segmentdb -d DIR/nt -o OUTDIR -n 8
    python -m repro.cli experiment --variant ceft-pvfs --workers 8 \\
        --servers 8 --stress 1 --scale 0.1
    python -m repro.cli synthdb   -o DIR -n nt --residues 1000000

``blastall`` dispatches the five programs through one interface, like
NCBI's binary (paper Section 2.1).  ``packdb`` is this engine's
``formatdb``: it streams FASTA into a persistent on-disk pack store
(checksummed, mmap-able — :mod:`repro.exec.diskpack`) that
``--db-pack`` runs then cold-start from without rebuilding anything,
serially (zero-copy mmap) or with ``--jobs`` (one memcpy into shared
memory per fragment).

Exit codes (parallel ``--jobs`` runs):

* ``0`` — success.
* ``3`` (``EXIT_POOL_FAILURE``) — the worker pool failed the job and
  serial fallback was disabled (``--no-fallback``): no results.
* ``4`` (``EXIT_INTEGRITY``) — a shared-memory fragment pack failed
  CRC verification (:class:`repro.exec.PackIntegrityError`); never
  degraded silently, no results.
* ``5`` (``EXIT_DEGRADED``) — results were produced (byte-identical),
  but by the serial engine after the pool collapsed; scripts that
  care about *how* the answer was computed can detect the degraded
  path without parsing stderr.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

#: Parallel run failed and fallback was disabled; no results produced.
EXIT_POOL_FAILURE = 3
#: A fragment pack failed CRC32 verification; no results produced.
EXIT_INTEGRITY = 4
#: Results produced, but via serial fallback after pool collapse.
EXIT_DEGRADED = 5


def _load_db(dbpath: str, protein: bool):
    from repro.blast.seqdb import SequenceDB

    directory, name = os.path.split(dbpath)
    return SequenceDB.load(directory or ".", name,
                           seqtype="aa" if protein else "nt")


def _open_store(directory: str):
    from repro.exec.diskpack import PackStore

    return PackStore.open(directory)


def _print_store(store, verbose: bool = True) -> None:
    print(f"pack store {store.directory}: {store.seqtype}, "
          f"{len(store)} sequences, {store.total_residues} residues, "
          f"{len(store.packs)} pack(s), word size {store.k}, "
          f"db version {store._version}")
    if not verbose:
        return
    for entry in store.packs:
        nbytes = os.path.getsize(store.pack_path(entry))
        print(f"  {entry.file}: fragment {entry.fragment_id} "
              f"v{entry.version}, {entry.n_sequences} seqs, "
              f"{entry.total_residues} residues, {nbytes} bytes")


def cmd_packdb_build(args) -> int:
    from repro.exec.diskpack import build_pack_store

    if bool(args.input) == bool(args.from_db):
        print("# packdb build: exactly one of -i/--input or --from-db "
              "is required", file=sys.stderr)
        return 2
    if args.from_db:
        source = _load_db(args.from_db, args.protein)
        store = build_pack_store(
            source, args.output, seqtype=source.seqtype,
            name=args.name or source.name, n_fragments=args.fragments,
            word_size=args.word_size)
    else:
        with open(args.input) as f:
            store = build_pack_store(
                f, args.output, seqtype="aa" if args.protein else "nt",
                name=args.name or "db", n_fragments=args.fragments,
                word_size=args.word_size)
    _print_store(store)
    return 0


def cmd_packdb_info(args) -> int:
    from repro.exec import PackIntegrityError

    try:
        store = _open_store(args.directory)
        _print_store(store)
        if args.verify:
            n = store.verify()
            print(f"verified {n} pack(s): every section CRC32 OK")
    except PackIntegrityError as exc:
        print(f"# pack integrity failure: {exc}", file=sys.stderr)
        return EXIT_INTEGRITY
    return 0


def cmd_packdb_verify(args) -> int:
    from repro.exec import PackIntegrityError

    try:
        store = _open_store(args.directory)
        n = store.verify()
    except PackIntegrityError as exc:
        print(f"# pack integrity failure: {exc}", file=sys.stderr)
        return EXIT_INTEGRITY
    print(f"verified {n} pack(s): every section CRC32 OK")
    return 0


def cmd_formatdb(args) -> int:
    from repro.blast.seqdb import SequenceDB

    with open(args.input) as f:
        text = f.read()
    db = SequenceDB.from_fasta_text(text, seqtype="aa" if args.protein else "nt",
                                    name=args.name)
    paths = db.write(args.directory)
    print(f"formatted {len(db)} sequences ({db.total_residues} residues)")
    for p in paths:
        print(f"  {p}")
    return 0


def _parallel_results(program: str, db, queries, params, jobs: int,
                      n_fragments: Optional[int], args=None):
    """Run every query of a ``--jobs N`` invocation through one
    persistent pool (packs attach once; queries stream through the
    shared work queue).  Results are byte-identical to the serial
    program dispatch.  Returns ``(results, degraded)`` — *degraded* is
    True when the pool collapsed and the batch was served by the
    serial fallback engine."""
    import warnings

    from repro.blast.alphabet import encode_dna, encode_protein
    from repro.blast.programs import program_defaults
    from repro.blast.seqdb import AA, NT
    from repro.exec import ExecPool

    need = NT if program == "blastn" else AA
    if db.seqtype != need:
        raise ValueError(f"{program} needs a {need} database")
    scheme, params = program_defaults(program, params)
    encode = encode_dna if program == "blastn" else encode_protein
    pool_kw = {}
    for attr, kw in (("heartbeat", "heartbeat"),
                     ("join_timeout", "join_timeout"),
                     ("hedge_after", "hedge_after"),
                     ("task_timeout", "task_timeout"),
                     ("task_granularity", "task_granularity")):
        val = getattr(args, attr, None) if args is not None else None
        if val is not None:
            pool_kw[kw] = val
    if args is not None and getattr(args, "no_respawn", False):
        pool_kw["respawn"] = False
    if args is not None and getattr(args, "no_fallback", False):
        pool_kw["serial_fallback"] = False
    if args is not None and getattr(args, "no_query_batch", False):
        pool_kw["query_batch"] = 0
    nodes = getattr(args, "nodes", None) if args is not None else None
    if nodes:
        pool_kw["nodes"] = [a for grp in nodes for a in grp.split(",")
                            if a.strip()]
        replication = getattr(args, "replication", None)
        if replication is not None:
            pool_kw["replication"] = replication
    with ExecPool(jobs=jobs, n_fragments=n_fragments, **pool_kw) as pool:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", RuntimeWarning)
            results = pool.search_many(
                [encode(rec.sequence) for rec in queries], db, scheme, params,
                query_ids=[rec.id or "query" for rec in queries],
                both_strands=(program == "blastn"))
        for w in caught:
            print(f"# {w.message}", file=sys.stderr)
        if nodes:
            for s in pool.node_ship_stats():
                print(f"# node {s['address']}: {s['connects']} connect(s), "
                      f"{s['packs_shipped']} pack(s)/"
                      f"{s['bytes_shipped']} B shipped, "
                      f"{s['packs_adopted']} adopted/"
                      f"{s['bytes_saved']} B saved", file=sys.stderr)
        degraded = bool(pool.last_stats and pool.last_stats.fallback)
        return results, degraded


def _serial_batch_results(program: str, db, queries, params):
    """All queries of a serial multi-query invocation through one
    batched pass per database traversal
    (:func:`repro.blast.search.search_batch`); byte-identical to the
    per-query program dispatch."""
    from repro.blast.alphabet import encode_dna, encode_protein
    from repro.blast.programs import program_defaults
    from repro.blast.search import search_batch
    from repro.blast.seqdb import AA, NT

    need = NT if program == "blastn" else AA
    if db.seqtype != need:
        raise ValueError(f"{program} needs a {need} database")
    scheme, sparams = program_defaults(program, params)
    encode = encode_dna if program == "blastn" else encode_protein
    return search_batch(
        [encode(rec.sequence) for rec in queries], db, scheme, sparams,
        query_ids=[rec.id or "query" for rec in queries],
        both_strands=(program == "blastn"))


def _search_store_serial(program: str, store, rec, params):
    """One query against a mmapped pack store, scored exactly as the
    program's serial whole-database dispatch would score it."""
    from repro.blast.alphabet import encode_dna, encode_protein
    from repro.blast.programs import program_defaults
    from repro.exec.diskpack import search_store

    scheme, sparams = program_defaults(program, params)
    encode = encode_dna if program == "blastn" else encode_protein
    return search_store(encode(rec.sequence), store, scheme, sparams,
                        query_id=rec.id or "query",
                        both_strands=(program == "blastn"))


def cmd_blastall(args) -> int:
    from repro.blast.fasta import parse_fasta
    from repro.blast.programs import blastall
    from repro.blast.render import render_results
    from repro.blast.search import SearchParams

    if getattr(args, "profile", False):
        from repro.blast.profile import PROFILE_ENV

        os.environ[PROFILE_ENV] = "1"
    if getattr(args, "no_gapped_bulk", False):
        from repro.blast.search import GAPPED_BULK_ENV

        os.environ[GAPPED_BULK_ENV] = "0"
    protein_db = args.program in ("blastp", "blastx")
    store = None
    db_pack = getattr(args, "db_pack", None)
    if db_pack:
        if args.database:
            print("# use either -d/--database or --db-pack, not both",
                  file=sys.stderr)
            return 2
        if args.program not in ("blastn", "blastp"):
            print(f"# --db-pack supports blastn/blastp only, "
                  f"not {args.program}", file=sys.stderr)
            return 2
        from repro.exec import PackIntegrityError

        try:
            store = _open_store(db_pack)
        except PackIntegrityError as exc:
            print(f"# pack integrity failure: {exc}", file=sys.stderr)
            return EXIT_INTEGRITY
        need = "nt" if args.program == "blastn" else "aa"
        if store.seqtype != need:
            print(f"# {args.program} needs a {need} pack store; "
                  f"{db_pack} holds {store.seqtype}", file=sys.stderr)
            return 2
        if args.alignments:
            print("# --db-pack ignores -a/--alignments (pack stores "
                  "serve hit reports, not pairwise renders)",
                  file=sys.stderr)
        db = store
    elif args.database:
        db = _load_db(args.database, protein_db)
    else:
        print("# one of -d/--database or --db-pack is required",
              file=sys.stderr)
        return 2
    with open(args.input) as f:
        queries = parse_fasta(f.read())
    params = None
    if args.evalue is not None or args.filter:
        params = SearchParams(
            word_size=3 if args.program in ("blastp", "blastx", "tblastn",
                                            "tblastx") else 11,
            evalue_cutoff=args.evalue if args.evalue is not None else 10.0,
            filter_low_complexity=args.filter)
    jobs = getattr(args, "jobs", None)
    nodes = getattr(args, "nodes", None)
    if jobs is None:
        # --nodes with no explicit -j runs remote-only, the pool's own
        # default for a configured node list.
        jobs = 0 if nodes else 1
    if jobs < 1 and not nodes:
        print("# --jobs 0 needs --nodes (a pool must have at least one "
              "worker somewhere)", file=sys.stderr)
        return 2
    parallel = None
    degraded = False
    if jobs > 1 or nodes:
        if args.program in ("blastn", "blastp"):
            from repro.exec import PackIntegrityError, PoolJobError

            try:
                parallel, degraded = _parallel_results(
                    args.program, db, queries, params, jobs,
                    getattr(args, "fragments", None), args)
            except PackIntegrityError as exc:
                print(f"# pack integrity failure: {exc}", file=sys.stderr)
                return EXIT_INTEGRITY
            except PoolJobError as exc:
                print(f"# pool failure: {exc}", file=sys.stderr)
                return EXIT_POOL_FAILURE
            except ValueError as exc:
                if store is None:
                    raise
                print(f"# {exc}", file=sys.stderr)
                return 2
        else:
            print(f"# --jobs applies to blastn/blastp only; "
                  f"running {args.program} serially", file=sys.stderr)
    # Serial multi-query runs go through the batched kernel by default:
    # one database pass serves every query (byte-identical to the
    # per-query dispatch).  --no-query-batch restores the query loop.
    batched = None
    if (parallel is None and store is None and len(queries) > 1
            and args.program in ("blastn", "blastp")
            and not getattr(args, "no_query_batch", False)):
        batched = _serial_batch_results(args.program, db, queries, params)
    for qi, rec in enumerate(queries):
        if parallel is not None:
            results = parallel[qi]
        elif batched is not None:
            results = batched[qi]
        elif store is not None:
            from repro.exec import PackIntegrityError

            try:
                results = _search_store_serial(args.program, store, rec,
                                               params)
            except PackIntegrityError as exc:
                print(f"# pack integrity failure: {exc}", file=sys.stderr)
                return EXIT_INTEGRITY
            except ValueError as exc:
                print(f"# {exc}", file=sys.stderr)
                return 2
        else:
            results = blastall(args.program, rec.sequence, db, params=params,
                               query_id=rec.id or "query")
        if args.outfmt == "tabular":
            print(results.tabular(max_hits=args.max_hits))
        elif args.outfmt == "xml":
            from repro.blast.xmlout import to_xml

            print(to_xml(results, program=args.program,
                         database=args.database or db_pack))
        elif args.alignments and store is None and \
                args.program in ("blastn", "blastp"):
            print(render_results(rec.sequence, db, results,
                                 max_hits=args.max_hits))
        else:
            print(results.report(max_hits=args.max_hits))
        print()
    return EXIT_DEGRADED if degraded else 0


def cmd_psiblast(args) -> int:
    from repro.blast.fasta import parse_fasta
    from repro.blast.psiblast import psiblast

    db = _load_db(args.database, protein=True)
    with open(args.input) as f:
        queries = parse_fasta(f.read())
    for rec in queries:
        result = psiblast(rec.sequence, db, iterations=args.iterations,
                          inclusion_evalue=args.inclusion_evalue,
                          query_id=rec.id or "query")
        for i, res in enumerate(result.iterations, 1):
            print(f"--- iteration {i} ---")
            print(res.report(max_hits=args.max_hits))
        status = "converged" if result.converged else "not converged"
        print(f"[{status} after {result.n_iterations} iteration(s)]")
        print()
    return 0


def cmd_segmentdb(args) -> int:
    from repro.blast.seqdb import segment_db

    db = _load_db(args.database, args.protein)
    frags = segment_db(db, args.n_fragments)
    for frag in frags:
        frag.write(args.output)
        print(f"fragment {frag.fragment_id}: {len(frag)} sequences, "
              f"{frag.total_residues} residues -> {args.output}/{frag.name}.*")
    return 0


def cmd_synthdb(args) -> int:
    from repro.workloads.synthdb import synthetic_nt_db

    db = synthetic_nt_db(args.residues, seed=args.seed, name=args.name)
    db.write(args.output)
    print(f"wrote {len(db)} synthetic sequences "
          f"({db.total_residues} residues) to {args.output}/{args.name}.*")
    return 0


def cmd_reproduce(args) -> int:
    from repro.core.figures import reproduce

    result = reproduce(args.figure, scale=args.scale)
    print(result.render())
    return 0


def cmd_experiment(args) -> int:
    from repro.core import (ExperimentConfig, Parallelization, Placement,
                            Variant, run_experiment)
    from repro.trace import analyze

    cfg = ExperimentConfig(
        variant=Variant(args.variant),
        n_workers=args.workers,
        n_servers=args.servers,
        placement=Placement(args.placement),
        n_stressed_disks=args.stress,
        trace=args.trace,
        parallelization=(Parallelization.QUERY_SEGMENTATION if args.queryseg
                         else Parallelization.DATABASE_SEGMENTATION),
        time_limit=1e7,
    )
    if args.scale != 1.0:
        cfg = cfg.scaled(args.scale)
    res = run_experiment(cfg)
    print(f"variant        : {args.variant}")
    print(f"workers/servers: {args.workers}/{args.servers}")
    print(f"database       : {cfg.db.total_bytes / 1e9:.2f} GB "
          f"(scale {args.scale:g})")
    print(f"execution time : {res.execution_time:.1f} s")
    if res.copy_time:
        print(f"copy time      : {res.copy_time:.1f} s per worker "
              f"(excluded, as in the paper)")
    print(f"I/O share      : {100 * res.io_fraction:.1f} %")
    if args.trace and res.tracer is not None:
        print()
        print(analyze(res.tracer).report())
    return 0


def cmd_node(args) -> int:
    from repro.exec.nodes import run_node

    run_node(args.host, args.port, node_id=args.node_id,
             max_sessions=args.max_sessions,
             announce=lambda msg: print(msg, flush=True))
    return 0


def _add_pool_args(p: argparse.ArgumentParser) -> None:
    """Fault-tolerance knobs shared by the parallel (``--jobs``)
    subcommands; defaults come from the pool (env-overridable)."""
    g = p.add_argument_group("pool fault tolerance (with --jobs)")
    g.add_argument("--heartbeat", type=float, default=None,
                   help="liveness/deadline sweep interval, seconds "
                        "(default 0.2; env REPRO_EXEC_HEARTBEAT)")
    g.add_argument("--join-timeout", type=float, default=None,
                   help="per-worker shutdown budget before terminate/kill "
                        "escalation (default 2.0; env "
                        "REPRO_EXEC_JOIN_TIMEOUT)")
    g.add_argument("--hedge-after", type=float, default=None,
                   help="soft deadline before a stuck task is hedged to an "
                        "idle worker (default adaptive; env "
                        "REPRO_EXEC_HEDGE_AFTER)")
    g.add_argument("--task-timeout", type=float, default=None,
                   help="hard deadline before a busy worker is presumed "
                        "hung and killed (default adaptive; env "
                        "REPRO_EXEC_TASK_TIMEOUT)")
    g.add_argument("--task-granularity", type=int, default=None,
                   help="fragments per pool task (1 = legacy one task "
                        "per fragment; default adaptive overhead-aware "
                        "ranges; env REPRO_EXEC_TASK_GRANULARITY)")
    g.add_argument("--no-respawn", action="store_true",
                   help="do not replace crashed workers")
    g.add_argument("--no-fallback", action="store_true",
                   help="fail (exit 3) instead of degrading to the serial "
                        "engine when the pool collapses")
    g.add_argument("--nodes", action="append", default=None,
                   metavar="HOST:PORT[,HOST:PORT...]",
                   help="remote worker nodes running `repro node` "
                        "(repeatable and/or comma-separated; env "
                        "REPRO_EXEC_NODES); fragment packs are shipped "
                        "once, cached by content identity, and mirrored "
                        "--replication ways so a node loss is served "
                        "from a surviving mirror")
    g.add_argument("--replication", type=int, default=None,
                   help="copies of each fragment pack across nodes "
                        "(default 2, clamped to the node count; env "
                        "REPRO_EXEC_REPLICATION)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("formatdb", help="format a FASTA file into a database")
    p.add_argument("-i", "--input", required=True, help="FASTA file")
    p.add_argument("-d", "--directory", required=True, help="output directory")
    p.add_argument("-n", "--name", default="db", help="database name")
    p.add_argument("-p", "--protein", action="store_true")
    p.set_defaults(fn=cmd_formatdb)

    p = sub.add_parser("blastall", help="run one of the five BLAST programs")
    p.add_argument("-p", "--program", required=True,
                   choices=["blastn", "blastp", "blastx", "tblastn", "tblastx"])
    p.add_argument("-d", "--database", default=None,
                   help="database path (directory/name)")
    p.add_argument("--db-pack", default=None, metavar="DIR",
                   help="search a persistent on-disk pack store (built "
                        "with `packdb build`) instead of -d: cold start "
                        "via mmap, no rebuild; blastn/blastp only")
    p.add_argument("-i", "--input", required=True, help="FASTA query file")
    p.add_argument("-e", "--evalue", type=float, default=None)
    p.add_argument("-F", "--filter", action="store_true",
                   help="mask low-complexity query regions (DUST/SEG)")
    p.add_argument("-a", "--alignments", action="store_true",
                   help="print pairwise alignments")
    p.add_argument("--max-hits", type=int, default=25)
    p.add_argument("-m", "--outfmt", default="report",
                   choices=["report", "tabular", "xml"],
                   help="output format (tabular = NCBI outfmt 6, "
                        "xml = BlastOutput XML)")
    p.add_argument("-j", "--jobs", type=int, default=None,
                   help="local worker processes for blastn/blastp "
                        "(multi-core database segmentation; results are "
                        "identical to a serial run; 0 = remote-only, "
                        "needs --nodes; default 1, or 0 with --nodes)")
    p.add_argument("--fragments", type=int, default=None,
                   help="database fragments for --jobs (default 2x jobs)")
    p.add_argument("--no-query-batch", action="store_true",
                   help="search multi-query FASTA one query at a time "
                        "instead of the multi-query batched kernel "
                        "(results are identical; batching is the default "
                        "for blastn/blastp)")
    p.add_argument("--no-gapped-bulk", action="store_true",
                   help="run gapped refinement with the scalar "
                        "reference path instead of the batched "
                        "two-pass kernel (results are identical; "
                        "equivalent to REPRO_GAPPED_BULK=0)")
    p.add_argument("--profile", action="store_true",
                   help="emit per-stage timing JSON (pack/index/scan/"
                        "seed/extend/gapped_bulk/gapped) to stderr; "
                        "equivalent to REPRO_PROFILE=1")
    _add_pool_args(p)
    p.set_defaults(fn=cmd_blastall)

    p = sub.add_parser("blastn", help="nucleotide search (blastall -p "
                                      "blastn shortcut with --jobs)")
    p.add_argument("-d", "--database", default=None,
                   help="database path (directory/name)")
    p.add_argument("--db-pack", default=None, metavar="DIR",
                   help="search a persistent on-disk pack store (built "
                        "with `packdb build`) instead of -d")
    p.add_argument("-i", "--input", required=True, help="FASTA query file")
    p.add_argument("-e", "--evalue", type=float, default=None)
    p.add_argument("-F", "--filter", action="store_true",
                   help="mask low-complexity query regions (DUST)")
    p.add_argument("-a", "--alignments", action="store_true",
                   help="print pairwise alignments")
    p.add_argument("--max-hits", type=int, default=25)
    p.add_argument("-m", "--outfmt", default="report",
                   choices=["report", "tabular", "xml"])
    p.add_argument("-j", "--jobs", type=int, default=None,
                   help="local worker processes (multi-core database "
                        "segmentation; 0 = remote-only, needs --nodes)")
    p.add_argument("--fragments", type=int, default=None,
                   help="database fragments for --jobs (default 2x jobs)")
    p.add_argument("--no-query-batch", action="store_true",
                   help="search multi-query FASTA one query at a time "
                        "instead of the multi-query batched kernel")
    p.add_argument("--no-gapped-bulk", action="store_true",
                   help="scalar gapped refinement (identical results; "
                        "equivalent to REPRO_GAPPED_BULK=0)")
    p.add_argument("--profile", action="store_true",
                   help="emit per-stage timing JSON to stderr; "
                        "equivalent to REPRO_PROFILE=1")
    _add_pool_args(p)
    p.set_defaults(fn=cmd_blastall, program="blastn")

    p = sub.add_parser(
        "packdb",
        help="persistent on-disk fragment packs (formatdb for the "
             "multi-core engine): build, inspect, verify")
    psub = p.add_subparsers(dest="packdb_cmd", required=True)
    b = psub.add_parser("build", help="stream FASTA (or an existing "
                                      "database) into a pack store")
    b.add_argument("-i", "--input", default=None, help="FASTA file "
                   "(streamed — bounded memory at any corpus size)")
    b.add_argument("--from-db", default=None, metavar="DIR/NAME",
                   help="pack an existing formatdb-style database "
                        "instead of FASTA")
    b.add_argument("-o", "--output", required=True,
                   help="store directory (created if missing)")
    b.add_argument("-n", "--name", default=None, help="store name")
    b.add_argument("-p", "--protein", action="store_true")
    b.add_argument("--fragments", type=int, default=4,
                   help="fragment packs to cut the corpus into")
    b.add_argument("--word-size", type=int, default=None,
                   help="scan word size baked into the packs "
                        "(default: 11 nt / 3 aa)")
    b.set_defaults(fn=cmd_packdb_build)
    i = psub.add_parser("info", help="print a store's manifest summary")
    i.add_argument("directory")
    i.add_argument("--verify", action="store_true",
                   help="also CRC-verify every pack section")
    i.set_defaults(fn=cmd_packdb_info)
    v = psub.add_parser("verify", help="CRC-verify every pack; exit 4 "
                                       "on any integrity failure")
    v.add_argument("directory")
    v.set_defaults(fn=cmd_packdb_verify)

    p = sub.add_parser("psiblast", help="position-specific iterated search")
    p.add_argument("-d", "--database", required=True)
    p.add_argument("-i", "--input", required=True, help="FASTA query file")
    p.add_argument("-j", "--iterations", type=int, default=3)
    p.add_argument("-h-incl", "--inclusion-evalue", type=float, default=1e-3)
    p.add_argument("--max-hits", type=int, default=15)
    p.set_defaults(fn=cmd_psiblast)

    p = sub.add_parser("segmentdb",
                       help="split a database into balanced fragments")
    p.add_argument("-d", "--database", required=True)
    p.add_argument("-o", "--output", required=True)
    p.add_argument("-n", "--n-fragments", type=int, required=True)
    p.add_argument("-p", "--protein", action="store_true")
    p.set_defaults(fn=cmd_segmentdb)

    p = sub.add_parser("synthdb", help="generate a synthetic nt-like database")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("-n", "--name", default="synth-nt")
    p.add_argument("--residues", type=int, default=1_000_000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_synthdb)

    p = sub.add_parser("node",
                       help="serve this machine as a worker node for "
                            "blastall --nodes (also installed as "
                            "`repro-node`)")
    p.add_argument("--host", default="0.0.0.0",
                   help="interface to listen on (default all)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0 = ephemeral; the chosen "
                        "port is announced on stdout)")
    p.add_argument("--node-id", default=None,
                   help="stable identity reported to masters "
                        "(default host:pid)")
    p.add_argument("--max-sessions", type=int, default=None,
                   help="serve this many master connections, then exit "
                        "(default: run until SIGTERM/SIGINT)")
    p.set_defaults(fn=cmd_node)

    p = sub.add_parser("reproduce",
                       help="regenerate one of the paper's tables/figures")
    p.add_argument("--figure", required=True,
                   help="T1, 4, 5, 6, 7 or 9")
    p.add_argument("--scale", type=float, default=0.1,
                   help="database scale (1.0 = the paper's 2.7 GB nt)")
    p.set_defaults(fn=cmd_reproduce)

    p = sub.add_parser("experiment",
                       help="run one simulated cluster experiment")
    p.add_argument("--variant", default="pvfs",
                   choices=["original", "pvfs", "ceft-pvfs"])
    p.add_argument("--workers", type=int, default=8)
    p.add_argument("--servers", type=int, default=8)
    p.add_argument("--placement", default="colocated",
                   choices=["colocated", "dedicated"])
    p.add_argument("--stress", type=int, default=0,
                   help="number of stressed disks (Figure 8 program)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="database scale factor (1.0 = the 2.7 GB nt)")
    p.add_argument("--trace", action="store_true",
                   help="collect and summarise the I/O trace (Figure 4)")
    p.add_argument("--queryseg", action="store_true",
                   help="use query segmentation instead of database "
                        "segmentation")
    p.set_defaults(fn=cmd_experiment)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


def node_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-node`` console script: a bare
    ``repro node`` so cluster job scripts can launch agents without
    spelling the subcommand."""
    if argv is None:
        argv = sys.argv[1:]
    return main(["node", *argv])


if __name__ == "__main__":
    sys.exit(main())
